"""Dynamic VM consolidation (paper §4.4).

    "Another potential benefit of using VMs is to dynamically migrate
    VMs (and the services running on them) to improve resource
    utilizations on active servers.  And through doing so, shut down
    inactive servers."

:class:`ConsolidationManager` closes that loop on the simulation
clock: each cycle it re-packs VMs onto the fewest hosts that fit
their *current* (diurnal) demand — not their nameplate peaks —
executes the resulting live migrations with their real durations and
energy, and parks emptied hosts.  The §4.4 caveats are first-class:

* packing is vetted by the interference model, so two disk-bound VMs
  are never stacked into a throughput collapse;
* migration energy is accounted, so the benchmark can show whether
  overnight consolidation actually pays after the moves.
"""

from __future__ import annotations

import typing

import numpy as np

from repro.cluster.interference import InterferenceModel
from repro.cluster.migration import MigrationManager
from repro.cluster.vm import VMHost, VirtualMachine
from repro.power.models import ServerPowerModel, TYPICAL_2008_SERVER
from repro.sim import Environment, Monitor

__all__ = ["ConsolidationManager"]


class ConsolidationManager:
    """Periodically re-pack VMs by instantaneous demand.

    Parameters
    ----------
    pack_limit:
        Fraction of host capacity the packer may fill (headroom for
        demand noise between cycles).
    min_slowdown:
        Packing constraint from the interference model: a candidate
        host assignment is rejected if any resident would run below
        this fraction of its nominal throughput.
    host_power_model:
        Translates a host's packed CPU demand into watts; parked
        hosts draw ``off_w``.
    """

    def __init__(self, env: Environment,
                 hosts: typing.Sequence[VMHost],
                 vms: typing.Sequence[VirtualMachine],
                 period_s: float = 3_600.0,
                 pack_limit: float = 0.85,
                 min_slowdown: float = 0.9,
                 host_power_model: ServerPowerModel | None = None,
                 interference: InterferenceModel | None = None,
                 migrations: MigrationManager | None = None,
                 host_priority: typing.Callable | None = None):
        if period_s <= 0:
            raise ValueError("period must be positive")
        if not 0.0 < pack_limit <= 1.0:
            raise ValueError("pack limit must be in (0, 1]")
        if not 0.0 < min_slowdown <= 1.0:
            raise ValueError("min slowdown must be in (0, 1]")
        self.env = env
        self.hosts = list(hosts)
        self.vms = list(vms)
        self.period_s = float(period_s)
        self.pack_limit = float(pack_limit)
        self.min_slowdown = float(min_slowdown)
        self.model = host_power_model or TYPICAL_2008_SERVER()
        self.interference = interference or InterferenceModel()
        self.migrations = migrations or MigrationManager(
            env, max_concurrent=2)
        # Packing order over hosts.  The default is the given order;
        # a cooling-aware deployment passes a key that ranks hosts in
        # CRAC-sensitive zones first, so consolidation concentrates
        # heat where the cooling system can actually see it (§5.1) —
        # the join point between the §4.4 and §5.1 stories.
        self.host_priority = host_priority
        self.active_hosts_monitor = Monitor(env, "consolidation.hosts")
        self.power_monitor = Monitor(env, "consolidation.power_w")
        self.moves_planned = 0

    # ------------------------------------------------------------------
    # Demand & power accounting
    # ------------------------------------------------------------------
    def _demand_vector(self, vm: VirtualMachine, t_s: float) -> np.ndarray:
        """The VM's resource vector scaled by its diurnal utilization."""
        shape = vm.profile.utilization_at(t_s) / max(
            vm.profile.as_vector().max(), 1e-12)
        return vm.demand_vector() * min(shape, 1.0)

    def host_power_w(self, host: VMHost, t_s: float) -> float:
        """Host wall power given its residents' current demand."""
        if not host.vms:
            return self.model.off_w
        cpu = sum(self._demand_vector(vm, t_s)[0] for vm in host.vms)
        return self.model.power(min(cpu / host.capacity[0], 1.0))

    def total_power_w(self, t_s: float) -> float:
        """Fleet wall power right now."""
        return sum(self.host_power_w(h, t_s) for h in self.hosts)

    def active_hosts(self) -> int:
        """Hosts currently holding at least one VM."""
        return sum(1 for h in self.hosts if h.vms)

    # ------------------------------------------------------------------
    # Packing
    # ------------------------------------------------------------------
    def _fits(self, host: VMHost, resident_demands: list[np.ndarray],
              candidate: np.ndarray,
              candidate_vm: VirtualMachine,
              residents: list[VirtualMachine]) -> bool:
        total = candidate.copy()
        for demand in resident_demands:
            total += demand
        if (total > host.capacity * self.pack_limit + 1e-12).any():
            return False
        # Interference veto on *profiles* (contention depends on who
        # is intensive, not on the hour).
        probe = VMHost("probe", capacity=tuple(host.capacity))
        for vm in residents + [candidate_vm]:
            probe.place(VirtualMachine(vm.name, vm.profile, vm.scale,
                                       vm.memory_gb))
        report = self.interference.evaluate(probe)
        return report.worst_slowdown >= self.min_slowdown

    def plan(self, t_s: float) -> dict[str, VMHost]:
        """Target assignment {vm name: host} for demand at ``t_s``.

        First-fit-decreasing on current demand over a fixed host
        order, so quiet hours need few hosts and the idle tail is
        maximal and stable (stability matters: a different host order
        each cycle would thrash migrations).
        """
        order = sorted(self.vms,
                       key=lambda vm: -self._demand_vector(vm, t_s)[0])
        hosts = (self.hosts if self.host_priority is None
                 else sorted(self.hosts, key=self.host_priority))
        assignment: dict[str, VMHost] = {}
        packed: dict[str, list[VirtualMachine]] = {
            h.name: [] for h in self.hosts}
        demands: dict[str, list[np.ndarray]] = {
            h.name: [] for h in self.hosts}
        for vm in order:
            demand = self._demand_vector(vm, t_s)
            placed = False
            for host in hosts:
                if self._fits(host, demands[host.name], demand, vm,
                              packed[host.name]):
                    assignment[vm.name] = host
                    packed[host.name].append(vm)
                    demands[host.name].append(demand)
                    placed = True
                    break
            if not placed:
                # Fall back: leave the VM where it is.
                assignment[vm.name] = vm.host
        return assignment

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _execute(self, assignment: dict[str, VMHost]):
        for vm in self.vms:
            target = assignment[vm.name]
            if target is None or vm.host is target:
                continue
            self.moves_planned += 1
            yield self.env.process(self.migrations.migrate(vm, target))

    def cycle(self):
        """Process generator: one plan-and-migrate cycle."""
        assignment = self.plan(self.env.now)
        yield from self._execute(assignment)
        self.active_hosts_monitor.record(self.active_hosts())
        self.power_monitor.record(self.total_power_w(self.env.now))

    def run(self):
        """Process generator: consolidate every period, forever."""
        while True:
            yield self.env.process(self.cycle(), name="consolidation")
            yield self.env.timeout(self.period_s)

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def energy_j(self, start: float | None = None,
                 end: float | None = None) -> float:
        """Host energy plus migration energy over an interval."""
        return (self.power_monitor.integral(start, end)
                + self.migrations.total_migration_energy_j())

    def static_power_w(self, t_s: float) -> float:
        """Baseline: the same VMs spread one-per-host where possible,
        every host powered (no consolidation)."""
        per_host = max(1, int(np.ceil(len(self.vms) / len(self.hosts))))
        cpu_per_vm = [self._demand_vector(vm, t_s)[0] for vm in self.vms]
        total = 0.0
        index = 0
        for host in self.hosts:
            chunk = cpu_per_vm[index:index + per_host]
            index += per_host
            utilization = min(sum(chunk) / host.capacity[0], 1.0)
            total += self.model.power(utilization)
        return total
