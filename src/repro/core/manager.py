"""The macro-resource management layer (paper Figure 4).

    "A macro-resource management layer ... takes information such as
    service-level agreement (SLA), application structures, and
    environmental conditions, and physical facility constraints ...
    monitors the operation status from application, system, and
    physical data ... and makes decisions that affect power
    provisioning, cooling control, server allocation, service
    placement, load balancing, and job priorities."

:class:`MacroResourceManager` is that layer for one facility: it owns
a demand forecaster, a coordinated fleet/P-state controller, the
facility power capper, and (when a machine room is attached) thermal
protection + cooling-aware vetting.  Each decision cycle produces an
auditable :class:`MacroDecision`.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.cluster.server import ServerState
from repro.control.coordinator import CoordinatedController
from repro.control.farm import ServerFarm
from repro.cooling.room import MachineRoom, ThermalAlarm
from repro.core.cooling_aware import CoolingAwarePlacer
from repro.core.forecast import HoltWintersForecaster
from repro.core.sla import SLA, SLAReport
from repro.power.capping import PowerCapper
from repro.sim import Monitor

__all__ = ["MacroResourceManager", "MacroDecision"]


@dataclasses.dataclass(frozen=True)
class MacroDecision:
    """One decision cycle's outputs, for the audit trail."""

    time_s: float
    observed_demand: float
    forecast_demand: float
    target_fleet: int
    pstate: int
    capped: bool
    thermal_safe: bool
    sla_risk: float | None = None


class MacroResourceManager:
    """Coordinated cyber-physical control of one data center.

    Parameters
    ----------
    farm:
        The compute plant (servers + load balancer + demand).
    power_budget_w:
        Facility (UPS) budget the capper enforces; ``None`` disables
        capping.
    room:
        Thermal plant; enables protective shutdown on alarms and the
        cooling-aware safety check.
    heat_by_zone_fn:
        Callable returning the current {zone: watts} map (supplied by
        the co-simulation harness, which knows the rack layout).
    """

    def __init__(self, farm: ServerFarm,
                 sla: SLA | None = None,
                 power_budget_w: float | None = None,
                 room: MachineRoom | None = None,
                 heat_by_zone_fn: typing.Callable[[], dict] | None = None,
                 period_s: float = 300.0,
                 forecast_horizon_s: float = 600.0,
                 forecaster=None,
                 target_utilization: float = 0.8,
                 headroom: float = 1.1,
                 risk_model=None):
        if period_s <= 0:
            raise ValueError("period must be positive")
        if forecast_horizon_s < 0:
            raise ValueError("forecast horizon cannot be negative")
        self.farm = farm
        self.env = farm.env
        self.sla = sla or SLA("default")
        self.period_s = float(period_s)
        self.forecast_horizon_s = float(forecast_horizon_s)
        self.forecaster = forecaster or HoltWintersForecaster()
        self._forecast_ready = False

        self.coordinator = CoordinatedController(
            farm, period_s=period_s,
            target_utilization=target_utilization,
            headroom=headroom,
            demand_source=self._provision_signal)

        self.capper: PowerCapper | None = None
        if power_budget_w is not None:
            self.capper = PowerCapper(self.env, power_budget_w,
                                      farm.servers)

        self.room = room
        self.heat_by_zone_fn = heat_by_zone_fn
        self.placer = CoolingAwarePlacer(room) if room is not None else None
        if room is not None:
            room.on_alarm(self._handle_thermal_alarm)

        #: Optional :class:`~repro.core.risk.RiskModel`; when present
        #: each decision carries its predicted SLA-violation
        #: probability (the Figure 4 "predict performance impacts and
        #: risks" duty).
        self.risk_model = risk_model
        self.decisions: list[MacroDecision] = []
        self.forecast_monitor = Monitor(self.env, "macro.forecast")
        self.thermal_shutdowns: list[tuple[float, str, int]] = []

    # ------------------------------------------------------------------
    # Signals
    # ------------------------------------------------------------------
    def _provision_signal(self, t_s: float) -> float:
        """Demand signal the coordinator provisions against.

        Uses the forecast once it has warmed up; falls back to the
        instantaneous demand before that.
        """
        if self._forecast_ready:
            return self.forecaster.forecast(self.forecast_horizon_s)
        return self.farm.demand_fn(t_s)

    def _handle_thermal_alarm(self, alarm: ThermalAlarm) -> None:
        """§2.2 protective behaviour: servers in a hot zone trip off."""
        victims = [s for s in self.farm.servers
                   if s.zone == alarm.zone
                   and s.state is ServerState.ACTIVE]
        for server in victims:
            server.fail()
        self.thermal_shutdowns.append(
            (alarm.time_s, alarm.zone, len(victims)))

    # ------------------------------------------------------------------
    # Decision cycle
    # ------------------------------------------------------------------
    def decide(self) -> MacroDecision:
        """One full macro cycle: observe → forecast → actuate → audit."""
        now = self.env.now
        observed = self.farm.demand_fn(now)
        self.forecaster.observe(now, observed)
        self._forecast_ready = True
        forecast = self.forecaster.forecast(self.forecast_horizon_s)
        self.forecast_monitor.record(forecast)

        target_fleet, pstate = self.coordinator.decide()

        capped = False
        if self.capper is not None:
            capped = self.capper.evaluate().capped

        thermal_safe = True
        if self.placer is not None and self.heat_by_zone_fn is not None:
            thermal_safe = self.placer.assess(self.heat_by_zone_fn()).safe

        sla_risk = None
        if self.risk_model is not None and target_fleet > 0:
            sla_risk = self.risk_model.assess(
                target_fleet, forecast).sla_violation_probability

        decision = MacroDecision(now, observed, forecast, target_fleet,
                                 pstate, capped, thermal_safe, sla_risk)
        self.decisions.append(decision)
        return decision

    def run(self):
        """Process generator: decide every period."""
        while True:
            self.decide()
            yield self.env.timeout(self.period_s)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def sla_report(self, start: float | None = None,
                   end: float | None = None) -> SLAReport:
        """Evaluate the SLA against the farm's measured signals."""
        return self.sla.evaluate(self.farm.delay_monitor,
                                 self.farm.balancer.offered_monitor,
                                 self.farm.shed_monitor, start, end)

    def capping_fraction(self) -> float:
        """Fraction of capper evaluations that engaged (0 if disabled)."""
        if self.capper is None:
            return 0.0
        return self.capper.capped_fraction()
