"""The macro-resource management layer (paper Figure 4).

    "A macro-resource management layer ... takes information such as
    service-level agreement (SLA), application structures, and
    environmental conditions, and physical facility constraints ...
    monitors the operation status from application, system, and
    physical data ... and makes decisions that affect power
    provisioning, cooling control, server allocation, service
    placement, load balancing, and job priorities."

:class:`MacroResourceManager` is that layer for one facility: it owns
a demand forecaster, a coordinated fleet/P-state controller, the
facility power capper, and (when a machine room is attached) thermal
protection + cooling-aware vetting.  Each decision cycle produces an
auditable :class:`MacroDecision`.

When a :class:`~repro.core.faults.FaultDomainEngine` is attached, the
manager also runs the paper's "diagnose possible failures" loop: on a
detected capacity loss it enters **degraded operations** — browning
out admission, tightening the power cap, forcing deeper P-states under
power incidents, and gracefully draining zones that are drifting
toward thermal alarm — then recovers with hysteresis once the facility
is healthy again.  Every mode transition lands in an incident log.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.cluster.server import ServerState
from repro.control.coordinator import CoordinatedController
from repro.control.farm import ServerFarm
from repro.cooling.room import MachineRoom, ThermalAlarm
from repro.core.cooling_aware import CoolingAwarePlacer
from repro.core.forecast import HoltWintersForecaster
from repro.core.sla import SLA, SLAReport
from repro.obs import AuditTrail
from repro.power.capping import PowerCapper
from repro.sim import Monitor

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.core.faults import FacilityStatus, FaultDomainEngine

__all__ = ["MacroResourceManager", "MacroDecision", "DegradedOpsPolicy"]


@dataclasses.dataclass(frozen=True)
class DegradedOpsPolicy:
    """Knobs for degraded operations (brownout / cap / drain / recover).

    Parameters
    ----------
    admission_fraction:
        Demand fraction admitted while degraded (brownout; refused
        work counts against the SLA).
    cap_margin:
        The capper budget is set to ``available power × cap_margin``
        while degraded, so the shrunken facility keeps a guard band.
    battery_cap_fraction:
        Extra budget tightening while riding the UPS battery, to
        stretch ride-through until the generator starts.
    pstate_floor:
        Minimum P-state depth forced while a *power* incident is
        active (deeper state = slower + cooler + cheaper).
    drain_margin_c:
        Zones within this many degrees of their alarm temperature are
        gracefully drained before the protective sensors trip.
    recovery_hold_s:
        Hysteresis: the facility must look healthy this long before
        degraded mode is exited.
    watchdog_quorum:
        Number of simultaneously watchdog-suspected servers that
        counts as a facility threat (only meaningful when a control
        plane with a watchdog is attached).
    """

    admission_fraction: float = 0.85
    cap_margin: float = 0.95
    battery_cap_fraction: float = 0.7
    pstate_floor: int = 1
    drain_margin_c: float = 3.0
    recovery_hold_s: float = 600.0
    watchdog_quorum: int = 1

    def __post_init__(self):
        if not 0.0 < self.admission_fraction <= 1.0:
            raise ValueError("admission fraction must be in (0, 1]")
        for frac in (self.cap_margin, self.battery_cap_fraction):
            if not 0.0 < frac <= 1.0:
                raise ValueError("cap fractions must be in (0, 1]")
        if self.pstate_floor < 0:
            raise ValueError("P-state floor cannot be negative")
        if self.drain_margin_c < 0 or self.recovery_hold_s < 0:
            raise ValueError("margins cannot be negative")
        if self.watchdog_quorum < 1:
            raise ValueError("watchdog quorum must be at least 1")


@dataclasses.dataclass(frozen=True)
class MacroDecision:
    """One decision cycle's outputs, for the audit trail."""

    time_s: float
    observed_demand: float
    forecast_demand: float
    target_fleet: int
    pstate: int
    capped: bool
    thermal_safe: bool
    sla_risk: float | None = None
    #: Operating mode this cycle ran in ("normal" / "degraded").
    mode: str = "normal"
    #: Facility incidents open at decision time (0 without an engine).
    active_incidents: int = 0
    #: Admission (brownout) fraction in force this cycle.
    admission_fraction: float = 1.0
    #: Servers gracefully drained from endangered zones this cycle.
    drained_servers: int = 0


class MacroResourceManager:
    """Coordinated cyber-physical control of one data center.

    Parameters
    ----------
    farm:
        The compute plant (servers + load balancer + demand).
    power_budget_w:
        Facility (UPS) budget the capper enforces; ``None`` disables
        capping.
    room:
        Thermal plant; enables protective shutdown on alarms and the
        cooling-aware safety check.
    heat_by_zone_fn:
        Callable returning the current {zone: watts} map (supplied by
        the co-simulation harness, which knows the rack layout).
    fault_engine:
        Optional :class:`~repro.core.faults.FaultDomainEngine` whose
        :meth:`status` the manager polls each cycle to diagnose
        facility-scale failures and drive degraded operations.
    degraded_policy:
        Degraded-operations knobs; defaults to
        :class:`DegradedOpsPolicy`'s defaults.
    control_plane:
        Optional :class:`~repro.controlplane.ControlPlane` mediating
        every sensor reading and actuation command.  ``None`` (the
        default) reads and commands ground truth directly; a perfect
        plane is a bit-identical synchronous passthrough; an impaired
        one puts the manager on believed state and feeds watchdog
        suspicions into the degraded-ops threat calculus.
    """

    def __init__(self, farm: ServerFarm,
                 sla: SLA | None = None,
                 power_budget_w: float | None = None,
                 room: MachineRoom | None = None,
                 heat_by_zone_fn: typing.Callable[[], dict] | None = None,
                 period_s: float = 300.0,
                 forecast_horizon_s: float = 600.0,
                 forecaster=None,
                 target_utilization: float = 0.8,
                 headroom: float = 1.1,
                 risk_model=None,
                 fault_engine: "FaultDomainEngine | None" = None,
                 degraded_policy: DegradedOpsPolicy | None = None,
                 control_plane=None):
        if period_s <= 0:
            raise ValueError("period must be positive")
        if forecast_horizon_s < 0:
            raise ValueError("forecast horizon cannot be negative")
        self.farm = farm
        self.env = farm.env
        self.control_plane = control_plane
        self.sla = sla or SLA("default")
        self.period_s = float(period_s)
        self.forecast_horizon_s = float(forecast_horizon_s)
        self.forecaster = forecaster or HoltWintersForecaster()
        self._forecast_ready = False

        self.coordinator = CoordinatedController(
            farm, period_s=period_s,
            target_utilization=target_utilization,
            headroom=headroom,
            demand_source=self._provision_signal)

        self.capper: PowerCapper | None = None
        if power_budget_w is not None:
            actuator = (control_plane.cap_actuator
                        if control_plane is not None else None)
            self.capper = PowerCapper(self.env, power_budget_w,
                                      farm.servers, actuator=actuator)

        self.room = room
        self.heat_by_zone_fn = heat_by_zone_fn
        self.placer = CoolingAwarePlacer(room) if room is not None else None
        if room is not None:
            room.on_alarm(self._handle_thermal_alarm)

        #: Optional :class:`~repro.core.risk.RiskModel`; when present
        #: each decision carries its predicted SLA-violation
        #: probability (the Figure 4 "predict performance impacts and
        #: risks" duty).
        self.risk_model = risk_model
        self.decisions: list[MacroDecision] = []
        self.forecast_monitor = Monitor(self.env, "macro.forecast")
        self.thermal_shutdowns: list[tuple[float, str, int]] = []

        # Degraded-operations state (the detect → degrade → recover loop).
        self.fault_engine = fault_engine
        self.degraded_policy = degraded_policy or DegradedOpsPolicy()
        self.mode = "normal"
        self._nominal_budget_w = power_budget_w
        self._clear_since: float | None = None
        #: Incident log: (time, from_mode, to_mode, reason).
        self.mode_transitions: list[tuple[float, str, str, str]] = []
        #: Drain log: (time, zone, servers drained).
        self.drains: list[tuple[float, str, int]] = []
        self.degraded_monitor = Monitor(self.env, "macro.degraded")
        self.degraded_monitor.record(0.0)

        #: Flight recorder wiring: when a tracer is bound to the
        #: environment before this manager is built, every decision
        #: cycle lands in a :class:`~repro.obs.AuditTrail` linking its
        #: actuations back to the observations that triggered them.
        #: ``None`` — the default — costs one attribute test per cycle.
        self.tracer = getattr(self.env, "tracer", None)
        self.audit: AuditTrail | None = (
            AuditTrail(self.tracer) if self.tracer is not None else None)

    # ------------------------------------------------------------------
    # Signals
    # ------------------------------------------------------------------
    def _provision_signal(self, t_s: float) -> float:
        """Demand signal the coordinator provisions against.

        Uses the forecast once it has warmed up; falls back to the
        instantaneous demand before that.
        """
        if self._forecast_ready:
            return self.forecaster.forecast(self.forecast_horizon_s)
        return self.farm.demand_fn(t_s)

    def _handle_thermal_alarm(self, alarm: ThermalAlarm) -> None:
        """§2.2 protective behaviour: servers in a hot zone trip off."""
        victims = [s for s in self.farm.servers
                   if s.zone == alarm.zone
                   and s.state is ServerState.ACTIVE]
        for server in victims:
            server.fail()
        self.thermal_shutdowns.append(
            (alarm.time_s, alarm.zone, len(victims)))

    # ------------------------------------------------------------------
    # Degraded operations (detect → degrade → recover, with hysteresis)
    # ------------------------------------------------------------------
    def _endangered_zones(self) -> list[str]:
        """Zones within the drain margin of their alarm temperature.

        Temperatures come through the control plane when one is
        attached — the manager drains on *believed* temperatures, so a
        stale sensor tier delays the pre-emptive drain exactly as it
        would in a real facility.
        """
        if self.room is None:
            return []
        cp = self.control_plane
        margin = self.degraded_policy.drain_margin_c
        if cp is not None:
            return [z.name for z in self.room.zones
                    if cp.zone_temp(z) >= z.alarm_temp_c - margin]
        return [z.name for z in self.room.zones
                if z.temp_c >= z.alarm_temp_c - margin]

    def _drain_zone(self, zone: str) -> int:
        """Gracefully shut down a zone's ACTIVE servers before they trip.

        Unlike the protective :meth:`_handle_thermal_alarm` path this
        is an orderly shutdown — load is released for re-dispatch and
        the machines land in OFF, ready to boot after recovery, rather
        than FAILED.
        """
        cp = self.control_plane
        if cp is None or cp.perfect:
            victims = [s for s in self.farm.servers
                       if s.zone == zone
                       and s.state is ServerState.ACTIVE]
        else:
            victims = [s for s in self.farm.servers
                       if s.zone == zone
                       and cp.believed_state(s) is ServerState.ACTIVE]
        for server in victims:
            if cp is not None:
                cp.shut_down(server)
            else:
                server.set_offered_load(0.0)
                server.shut_down()
        if victims:
            self.drains.append((self.env.now, zone, len(victims)))
            if self.tracer is not None:
                self.tracer.event("macro.drain_zone", "actuation",
                                  zone=zone, servers=len(victims))
        return len(victims)

    def _transition(self, to_mode: str, reason: str) -> None:
        self.mode_transitions.append(
            (self.env.now, self.mode, to_mode, reason))
        if self.tracer is not None:
            self.tracer.event("macro.mode_transition", "control",
                              from_mode=self.mode, to_mode=to_mode,
                              reason=reason)
        self.mode = to_mode
        self.degraded_monitor.record(1.0 if to_mode == "degraded" else 0.0)

    def _power_constrained(self, status: "FacilityStatus | None") -> bool:
        if status is None:
            return False
        if status.on_battery:
            return True
        return (self._nominal_budget_w is not None
                and status.power_capacity_w < self._nominal_budget_w)

    def _exit_degraded(self, reason: str) -> None:
        self.farm.admission_fraction = 1.0
        self.farm.quarantined_zones = set()
        if self.capper is not None and self._nominal_budget_w is not None:
            self.capper.budget_w = self._nominal_budget_w
        self._clear_since = None
        self._transition("normal", reason)

    def _apply_degradation(self,
                           status: "FacilityStatus | None") -> tuple[int, int]:
        """Run the mode machine; returns (active incidents, drained)."""
        now = self.env.now
        endangered = self._endangered_zones()
        # Watchdog suspicions (servers believed up but silent) are a
        # facility threat once they reach the configured quorum — the
        # "diagnose possible failures" input from the control plane.
        suspects = (self.control_plane.suspect_count()
                    if self.control_plane is not None else 0)
        suspected = suspects >= self.degraded_policy.watchdog_quorum
        threat = bool(endangered) or suspected or (
            status is not None
            and (status.active_incidents or status.on_battery))
        n_incidents = len(status.active_incidents) if status else 0

        if self.mode == "normal":
            if threat:
                reasons = [r.kind.value for r in status.active_incidents] \
                    if status else []
                reasons += [f"thermal:{z}" for z in endangered]
                if suspected:
                    reasons.append(f"watchdog:{suspects}")
                self._transition("degraded", ",".join(reasons) or "detected")
            else:
                return n_incidents, 0

        policy = self.degraded_policy
        self.farm.admission_fraction = policy.admission_fraction
        impaired = set(status.impaired_zones) if status else set()
        self.farm.quarantined_zones = impaired | set(endangered)
        drained = sum(self._drain_zone(z) for z in endangered)
        if self.capper is not None and self._nominal_budget_w is not None:
            available = (status.power_capacity_w if status is not None
                         else self._nominal_budget_w)
            if status is not None and status.on_battery:
                available *= policy.battery_cap_fraction
            self.capper.budget_w = min(self._nominal_budget_w,
                                       available * policy.cap_margin)

        if threat:
            self._clear_since = None
        elif self._clear_since is None:
            self._clear_since = now
        elif now - self._clear_since >= policy.recovery_hold_s:
            self._exit_degraded("facility healthy")
        return n_incidents, drained

    def degraded_s(self, start: float | None = None,
                   end: float | None = None) -> float:
        """Total time spent in degraded mode over an interval."""
        return self.degraded_monitor.integral(start, end)

    # ------------------------------------------------------------------
    # Decision cycle
    # ------------------------------------------------------------------
    def decide(self) -> MacroDecision:
        """One full macro cycle: observe → forecast → actuate → audit.

        With a tracer attached the cycle runs inside a ``macro.decide``
        span under a ``macro`` wall timer, and the audit trail records
        the cycle's observations and every actuation event emitted
        anywhere in the stack before it commits.
        """
        tracer = self.tracer
        if tracer is None:
            return self._decide()
        with tracer.timer("macro"), \
                tracer.span("macro.decide", "control"):
            return self._decide()

    def _observe_demand(self, now: float) -> float:
        """Demand as believed, logged into the open audit record."""
        cp = self.control_plane
        observed = (cp.observe_demand(now) if cp is not None
                    else self.farm.demand_fn(now))
        audit = self.audit
        if audit is not None:
            if cp is not None and not cp.perfect:
                # Re-read the estimator (pure) to capture the sample's
                # measurement time and staleness for the audit trail.
                reading = cp.telemetry.read("farm.demand")
                if not reading.missing:
                    audit.observe("farm.demand", observed,
                                  reading.time_s, reading.age_s,
                                  "telemetry")
                    return observed
            audit.observe("farm.demand", observed, now, 0.0, "direct")
        return observed

    def _audit_status(self, now: float,
                      status: "FacilityStatus | None") -> None:
        """Log facility gauges + threat context for this cycle."""
        audit = self.audit
        if audit is None:
            return
        cp = self.control_plane
        source = ("telemetry" if cp is not None and not cp.perfect
                  else "direct")
        domains: list[str] = []
        if status is not None:
            audit.observe("facility.capacity_w",
                          float(status.power_capacity_w), now, 0.0,
                          source)
            if status.on_battery:
                audit.observe("facility.on_battery", True, now, 0.0,
                              source)
            domains = [r.kind.value for r in status.active_incidents]
        suspects = (cp.suspect_count() if cp is not None else 0)
        audit.context(mode=self.mode,
                      active_incidents=len(domains),
                      fault_domains=domains,
                      watchdog_suspects=suspects)

    def _decide(self) -> MacroDecision:
        now = self.env.now
        cp = self.control_plane
        audit = self.audit
        if audit is not None:
            audit.begin(now)
        # The demand signal crosses the telemetry network when a
        # control plane is attached: dropout, noise, and staleness
        # shape what the forecaster learns from.
        observed = self._observe_demand(now)
        self.forecaster.observe(now, observed)
        self._forecast_ready = True
        forecast = self.forecaster.forecast(self.forecast_horizon_s)
        self.forecast_monitor.record(forecast)

        # Diagnose possible failures before actuating: quarantines and
        # the brownout must be in force when the coordinator sizes the
        # fleet and the capper evaluates.
        status = (self.fault_engine.status()
                  if self.fault_engine is not None else None)
        if cp is not None:
            status = cp.observe_status(status)
        self._audit_status(now, status)
        n_incidents, drained = self._apply_degradation(status)

        target_fleet, pstate = self.coordinator.decide()

        capped = False
        if self.capper is not None:
            capped = self.capper.evaluate().capped

        # Under a power incident, force the fleet at least
        # ``pstate_floor`` deep: slower and cooler stretches battery
        # ride-through and keeps the derated UPS inside its rating.
        if self.mode == "degraded" and self._power_constrained(status):
            if cp is None or cp.perfect:
                active = self.farm.active_servers()
            else:
                active = cp.believed_active(self.farm)
            if active:
                floor = min(self.degraded_policy.pstate_floor,
                            len(active[0].model.pstates) - 1)
                if pstate < floor:
                    pstate = floor
                    for server in active:
                        if cp is not None:
                            cp.set_pstate(server, floor)
                        else:
                            server.set_pstate(floor)
                    if self.tracer is not None:
                        self.tracer.event("dvfs.floor", "actuation",
                                          index=floor,
                                          servers=len(active))

        thermal_safe = True
        if self.placer is not None and self.heat_by_zone_fn is not None:
            thermal_safe = self.placer.assess(self.heat_by_zone_fn()).safe

        sla_risk = None
        if self.risk_model is not None and target_fleet > 0:
            sla_risk = self.risk_model.assess(
                target_fleet, forecast).sla_violation_probability

        decision = MacroDecision(now, observed, forecast, target_fleet,
                                 pstate, capped, thermal_safe, sla_risk,
                                 mode=self.mode,
                                 active_incidents=n_incidents,
                                 admission_fraction=self.farm
                                 .admission_fraction,
                                 drained_servers=drained)
        self.decisions.append(decision)
        if audit is not None:
            audit.commit(forecast=forecast, target_fleet=target_fleet,
                         pstate=pstate, capped=capped, mode=self.mode,
                         admission_fraction=self.farm.admission_fraction,
                         drained_servers=drained)
        return decision

    def run(self):
        """Process generator: decide every period."""
        while True:
            self.decide()
            yield self.env.timeout(self.period_s)

    # ------------------------------------------------------------------
    # Live retargeting (the ``repro.serve`` mutation surface)
    # ------------------------------------------------------------------
    def swap_forecaster(self, forecaster) -> None:
        """Hot-swap the demand forecaster mid-run.

        The replacement starts cold: ``_forecast_ready`` drops, so the
        next cycle provisions on instantaneous demand until the new
        model has observed its first sample — the same warm-up contract
        a freshly built manager has.
        """
        self.forecaster = forecaster
        self._forecast_ready = False
        if self.tracer is not None:
            self.tracer.event("macro.swap_forecaster", "actuation",
                              forecaster=type(forecaster).__name__)

    def retarget_budget(self, budget_w: float) -> bool:
        """Retarget the facility power cap mid-run.

        The new watts become the *nominal* budget (degraded-ops
        tightening still applies on top next cycle); in normal mode the
        capper budget moves immediately and re-evaluates, so any
        APPLY_CAP/REMOVE_CAP commands issue synchronously — under the
        caller's open audit record when one is open.  Returns ``False``
        when capping is disabled on this facility.
        """
        if budget_w <= 0:
            raise ValueError("power budget must be positive")
        if self.capper is None:
            return False
        self._nominal_budget_w = float(budget_w)
        if self.mode == "normal":
            self.capper.budget_w = float(budget_w)
        if self.tracer is not None:
            self.tracer.event("macro.retarget_budget", "actuation",
                              budget_w=float(budget_w))
        self.capper.evaluate()
        return True

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def sla_report(self, start: float | None = None,
                   end: float | None = None) -> SLAReport:
        """Evaluate the SLA against the farm's measured signals."""
        return self.sla.evaluate(self.farm.delay_monitor,
                                 self.farm.offered_monitor,
                                 self.farm.shed_monitor, start, end)

    def capping_fraction(self) -> float:
        """Fraction of capper evaluations that engaged (0 if disabled)."""
        if self.capper is None:
            return 0.0
        return self.capper.capped_fraction()
