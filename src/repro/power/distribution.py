"""The tiered power-distribution system (paper Figure 1).

Power drawn from the grid is transformed and conditioned, charges the
UPS, and is distributed through PDUs to racks.  Each conversion stage
loses power; the fraction lost depends on the stage's *load* — UPS
double conversion in particular is markedly less efficient at low
load, which is one concrete reason under-utilized data centers have
poor PUE (§2.2).

The model is a tree of :class:`PowerNode` objects.  Demand is injected
at the leaves (racks / IT loads) and propagated upward: each node's
input power is its children's demand divided by its efficiency at that
load.  Capacity checks run at every level, because the paper notes the
UPS rating "determines how many servers can a data center host"
(§2.1) — exceeding it is exactly the event power capping must prevent.
"""

from __future__ import annotations

import typing

__all__ = [
    "EfficiencyCurve",
    "PowerNode",
    "PowerDeliveryReport",
    "build_tier2_power_tree",
    "summarize",
    "CapacityExceeded",
    "TRANSFORMER_EFFICIENCY",
    "UPS_DOUBLE_CONVERSION_EFFICIENCY",
    "PDU_EFFICIENCY",
]


class EfficiencyCurve:
    """Piecewise-linear efficiency as a function of load fraction.

    Defined by ``(load_fraction, efficiency)`` knots; interpolates
    linearly between them and clamps outside.  Real conversion stages
    are inefficient at low load and flatten out near rating.
    """

    def __init__(self, knots: typing.Sequence[tuple[float, float]]):
        knots = sorted((float(l), float(e)) for l, e in knots)
        if not knots:
            raise ValueError("need at least one knot")
        for load, eff in knots:
            if not 0.0 <= load <= 1.5:
                raise ValueError(f"load fraction {load} outside [0, 1.5]")
            if not 0.0 < eff <= 1.0:
                raise ValueError(f"efficiency {eff} outside (0, 1]")
        self.knots = knots

    def __call__(self, load_fraction: float) -> float:
        """Efficiency at ``load_fraction`` of rated capacity."""
        knots = self.knots
        if load_fraction <= knots[0][0]:
            return knots[0][1]
        if load_fraction >= knots[-1][0]:
            return knots[-1][1]
        for (l0, e0), (l1, e1) in zip(knots, knots[1:]):
            if l0 <= load_fraction <= l1:
                if l1 == l0:
                    return e1
                frac = (load_fraction - l0) / (l1 - l0)
                return e0 + frac * (e1 - e0)
        raise AssertionError("unreachable")  # pragma: no cover


#: Dry-type transformer: very efficient, slightly worse at low load.
TRANSFORMER_EFFICIENCY = EfficiencyCurve(
    [(0.0, 0.95), (0.1, 0.97), (0.25, 0.985), (0.5, 0.99), (1.0, 0.985)])

#: Double-conversion UPS: poor below ~20 % load (fixed losses dominate).
UPS_DOUBLE_CONVERSION_EFFICIENCY = EfficiencyCurve(
    [(0.0, 0.60), (0.1, 0.80), (0.2, 0.86), (0.4, 0.91),
     (0.7, 0.93), (1.0, 0.94)])

#: PDU: transformer + breakers; mostly flat.
PDU_EFFICIENCY = EfficiencyCurve(
    [(0.0, 0.93), (0.2, 0.96), (0.5, 0.975), (1.0, 0.97)])


class CapacityExceeded(RuntimeError):
    """A node was asked to deliver more than its rating allows."""

    def __init__(self, node: "PowerNode", demand_w: float):
        super().__init__(
            f"{node.name}: demand {demand_w:.0f} W exceeds "
            f"capacity {node.capacity_w:.0f} W")
        self.node = node
        self.demand_w = demand_w


class PowerNode:
    """One stage of the distribution tree (transformer, UPS, PDU, rack).

    Leaves carry an externally-set IT demand via :meth:`set_demand`;
    interior nodes aggregate their children.
    """

    def __init__(self, name: str, capacity_w: float,
                 efficiency: EfficiencyCurve | None = None,
                 strict: bool = False):
        if capacity_w <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_w}")
        self.name = name
        self.capacity_w = float(capacity_w)
        self.efficiency = efficiency or EfficiencyCurve([(0.0, 1.0)])
        self.strict = strict
        self.children: list[PowerNode] = []
        self.parent: PowerNode | None = None
        self._leaf_demand_w = 0.0
        self.failed = False

    def add_child(self, child: "PowerNode") -> "PowerNode":
        """Attach ``child`` below this node and return it (chainable)."""
        if child.parent is not None:
            raise ValueError(f"{child.name} already has a parent")
        child.parent = self
        self.children.append(child)
        return child

    def set_demand(self, watts: float) -> None:
        """Set the IT demand at a leaf node."""
        if self.children:
            raise ValueError(f"{self.name} is not a leaf")
        if watts < 0:
            raise ValueError(f"negative demand {watts}")
        self._leaf_demand_w = float(watts)

    def trip(self) -> None:
        """Open this branch's breaker: nothing flows through it.

        Models the §2 PDU/branch failure domain — every load below a
        tripped node is dark regardless of its own demand.
        """
        self.failed = True

    def restore(self) -> None:
        """Close the breaker after repair."""
        self.failed = False

    def output_w(self) -> float:
        """Power this node must deliver downstream."""
        if self.failed:
            return 0.0
        if not self.children:
            return self._leaf_demand_w
        return sum(child.input_w() for child in self.children)

    def input_w(self) -> float:
        """Power this node draws from upstream (output / efficiency)."""
        if self.failed:
            return 0.0
        out = self.output_w()
        if out == 0.0:
            return 0.0
        load_fraction = out / self.capacity_w
        if self.strict and load_fraction > 1.0:
            raise CapacityExceeded(self, out)
        return out / self.efficiency(load_fraction)

    def loss_w(self) -> float:
        """Power converted to heat inside this node."""
        return self.input_w() - self.output_w()

    def load_fraction(self) -> float:
        """Output as a fraction of rated capacity."""
        return self.output_w() / self.capacity_w

    def headroom_w(self) -> float:
        """Remaining deliverable power before hitting the rating."""
        return self.capacity_w - self.output_w()

    def walk(self) -> typing.Iterator["PowerNode"]:
        """Iterate this node and all descendants, depth first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> "PowerNode":
        """Locate a descendant (or self) by name."""
        for node in self.walk():
            if node.name == name:
                return node
        raise KeyError(f"no node named {name!r} under {self.name!r}")

    def __repr__(self) -> str:
        return (f"<PowerNode {self.name!r} cap={self.capacity_w:.0f}W "
                f"children={len(self.children)}>")


class PowerDeliveryReport(typing.NamedTuple):
    """Snapshot of the whole tree for one demand assignment."""

    grid_input_w: float
    it_output_w: float
    total_loss_w: float
    per_node_loss_w: dict
    worst_load_fraction: float

    @property
    def distribution_efficiency(self) -> float:
        """IT power delivered per watt drawn from the grid."""
        if self.grid_input_w == 0:
            return 1.0
        return self.it_output_w / self.grid_input_w


def summarize(root: PowerNode) -> PowerDeliveryReport:
    """Evaluate the tree bottom-up and report losses and loading."""
    per_node = {node.name: node.loss_w() for node in root.walk()}
    leaves_w = sum(n._leaf_demand_w for n in root.walk() if not n.children)
    worst = max((n.load_fraction() for n in root.walk()), default=0.0)
    return PowerDeliveryReport(
        grid_input_w=root.input_w(),
        it_output_w=leaves_w,
        total_loss_w=sum(per_node.values()),
        per_node_loss_w=per_node,
        worst_load_fraction=worst,
    )


def build_tier2_power_tree(n_pdus: int = 4, racks_per_pdu: int = 8,
                           rack_capacity_w: float = 12_000.0,
                           overhead_factor: float = 1.25,
                           strict: bool = False) -> PowerNode:
    """A tier-2 style tree: grid transformer → UPS → PDUs → racks.

    ``overhead_factor`` sizes each stage above the sum of its children
    (tier-2 has limited redundancy — a single distribution path —
    hence the modest margin).  Returns the transformer (root) node.
    """
    pdu_capacity = racks_per_pdu * rack_capacity_w * overhead_factor
    ups_capacity = n_pdus * pdu_capacity * overhead_factor
    transformer = PowerNode("transformer", ups_capacity * 1.1,
                            TRANSFORMER_EFFICIENCY, strict=strict)
    ups = transformer.add_child(
        PowerNode("ups", ups_capacity,
                  UPS_DOUBLE_CONVERSION_EFFICIENCY, strict=strict))
    for p in range(n_pdus):
        pdu = ups.add_child(
            PowerNode(f"pdu-{p}", pdu_capacity, PDU_EFFICIENCY,
                      strict=strict))
        for r in range(racks_per_pdu):
            pdu.add_child(
                PowerNode(f"rack-{p}-{r}", rack_capacity_w, strict=strict))
    return transformer
