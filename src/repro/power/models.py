"""Server power models.

The paper's provisioning arguments hinge on one stylized fact (§4.3,
citing Fan et al. [10] and Chen et al. [18]):

    "a powered on server with zero workload consumes about 60 % of its
    peak power"

so the baseline model is *idle floor plus utilization-proportional
dynamic power*.  The models also understand P-/T-states, because the
DVFS controllers (§4.2) act by moving the CPU down the ladder, which
scales the **dynamic** term only — the idle floor (fans, disks, memory
refresh, chipset, PSU overhead) is unaffected by CPU frequency.
"""

from __future__ import annotations

from repro.power.pstates import PStateTable

__all__ = ["ServerPowerModel", "ENERGY_PROPORTIONAL", "TYPICAL_2008_SERVER"]


class ServerPowerModel:
    """Power draw of one server as a function of utilization and state.

    Parameters
    ----------
    peak_w:
        Wall power at 100 % utilization in P0.
    idle_fraction:
        Idle power as a fraction of peak (paper: ≈ 0.6).
    nonlinearity:
        Exponent ``r`` of the calibrated Fan-et-al. form
        ``P = P_idle + (P_peak − P_idle) · (2u − u^r) / 1`` when
        ``r > 1``; ``r = 1`` selects the plain linear model.  The
        mildly concave form matches the empirical observation that
        power rises faster at low utilization.
    off_w:
        Residual draw when switched off (e.g. management controller).
    boot_w:
        Draw while booting (typically near peak — spinning disks, POST).
    cpu_share:
        Fraction of the *dynamic* range attributable to the CPU, i.e.
        the part that P-states can scale.  Memory/disk/network dynamic
        power is untouched by DVFS.
    """

    def __init__(self, peak_w: float = 300.0, idle_fraction: float = 0.6,
                 nonlinearity: float = 1.0, off_w: float = 5.0,
                 boot_w: float | None = None, cpu_share: float = 0.6,
                 pstate_table: PStateTable | None = None):
        if peak_w <= 0:
            raise ValueError(f"peak_w must be positive, got {peak_w}")
        if not 0.0 <= idle_fraction < 1.0:
            raise ValueError(f"idle_fraction must be in [0, 1), got {idle_fraction}")
        if nonlinearity < 1.0:
            raise ValueError(f"nonlinearity must be >= 1, got {nonlinearity}")
        if off_w < 0 or off_w > peak_w:
            raise ValueError(f"off_w must be in [0, peak_w], got {off_w}")
        if not 0.0 <= cpu_share <= 1.0:
            raise ValueError(f"cpu_share must be in [0, 1], got {cpu_share}")
        self.peak_w = float(peak_w)
        self.idle_fraction = float(idle_fraction)
        self.nonlinearity = float(nonlinearity)
        self.off_w = float(off_w)
        self.boot_w = float(peak_w if boot_w is None else boot_w)
        self.cpu_share = float(cpu_share)
        self.pstates = pstate_table or PStateTable()
        # Hot-path constants for power(): the same products the public
        # properties derive on demand, computed once.  All constructor
        # inputs are effectively immutable (nothing in the codebase
        # mutates a model after construction).
        self._idle_w = self.idle_fraction * self.peak_w
        dynamic = self.peak_w - self._idle_w
        self._cpu_dynamic_w = dynamic * self.cpu_share
        self._other_dynamic_w = dynamic * (1.0 - self.cpu_share)

    @property
    def idle_w(self) -> float:
        """Power at zero utilization, fully on, P0."""
        return self.idle_fraction * self.peak_w

    @property
    def dynamic_range_w(self) -> float:
        """Peak minus idle: the utilization-dependent power band."""
        return self.peak_w - self.idle_w

    def _utilization_shape(self, utilization: float) -> float:
        """Map utilization to the fraction of the dynamic range drawn."""
        u = min(max(utilization, 0.0), 1.0)
        r = self.nonlinearity
        if r == 1.0:
            return u
        # Fan et al. calibrated form: concave, equals u at 0 and 1.
        # Clamped so exotic exponents can never overshoot the peak.
        return min(2.0 * u - u ** r, 1.0)

    def power(self, utilization: float, pstate: int = 0,
              tstate: int = 0) -> float:
        """Wall power (W) at ``utilization`` in the given CPU state.

        ``utilization`` is the fraction of the *current state's*
        capacity in use (what an OS reports), in [0, 1].

        The CPU dynamic term scales with busy fraction × the state's
        V²f power fraction.  The non-CPU dynamic term (disk, memory,
        network) scales with *delivered throughput* — utilization
        times the state's capacity fraction — because slowing the CPU
        stretches CPU busy time but moves no extra bytes.  Getting
        this split right is what makes DVFS actually save energy in
        the model, as it does on real hardware.
        """
        # Inlined _utilization_shape and memoized state fractions: this
        # method is called once per server power change, which makes it
        # the single hottest function in a fleet run.
        table = self.pstates
        if table.tstates:
            cap = table._cap_frac[pstate][tstate]
            scale = table._dyn_frac[pstate][tstate]
        else:
            cap = table._cap_frac[pstate][0]
            scale = table._dyn_frac[pstate][0]
        r = self.nonlinearity
        u = utilization
        if u < 0.0:
            u = 0.0
        elif u > 1.0:
            u = 1.0
        cpu_shape = u if r == 1.0 else min(2.0 * u - u ** r, 1.0)
        t = utilization * cap
        if t < 0.0:
            t = 0.0
        elif t > 1.0:
            t = 1.0
        other_shape = t if r == 1.0 else min(2.0 * t - t ** r, 1.0)
        return (self._idle_w + cpu_shape * self._cpu_dynamic_w * scale
                + other_shape * self._other_dynamic_w)

    def capacity_fraction(self, pstate: int = 0, tstate: int = 0) -> float:
        """Throughput available in this state, relative to P0/T0."""
        return self.pstates.capacity_fraction(pstate, tstate)

    def energy_per_request_j(self, service_time_s: float,
                             pstate: int = 0) -> float:
        """Marginal energy of one request of given P0 service time.

        In a slower P-state the request holds the CPU longer but the
        dynamic power is lower; this helper exposes the trade-off that
        per-task DVFS policies (Vertigo, §4.2) navigate.
        """
        if service_time_s < 0:
            raise ValueError(f"negative service time {service_time_s}")
        cap = self.pstates.capacity_fraction(pstate)
        stretched = service_time_s / cap
        dynamic_w = (self.dynamic_range_w * self.cpu_share
                     * self.pstates.dynamic_power_fraction(pstate))
        return dynamic_w * stretched

    def __repr__(self) -> str:
        return (f"ServerPowerModel(peak={self.peak_w:.0f}W, "
                f"idle={self.idle_fraction:.0%}, r={self.nonlinearity})")


def TYPICAL_2008_SERVER() -> ServerPowerModel:
    """The paper's stylized server: 300 W peak, 60 % idle floor."""
    return ServerPowerModel(peak_w=300.0, idle_fraction=0.6)


def ENERGY_PROPORTIONAL() -> ServerPowerModel:
    """Barroso & Hölzle's ideal [9]: power tracks utilization to zero."""
    return ServerPowerModel(peak_w=300.0, idle_fraction=0.0, off_w=0.0)
