"""Power substrate: server models, CPU states, distribution, UPS,
capping, and PUE accounting (paper §2.1, §4.2, §4.3)."""

from repro.power.capping import CapDecision, PowerCapper
from repro.power.distribution import (
    EfficiencyCurve,
    PDU_EFFICIENCY,
    PowerDeliveryReport,
    PowerNode,
    TRANSFORMER_EFFICIENCY,
    UPS_DOUBLE_CONVERSION_EFFICIENCY,
    build_tier2_power_tree,
    summarize,
)
from repro.power.models import (
    ENERGY_PROPORTIONAL,
    ServerPowerModel,
    TYPICAL_2008_SERVER,
)
from repro.power.pstates import (
    DEFAULT_PSTATES,
    DEFAULT_TSTATES,
    PState,
    PStateTable,
    TState,
)
from repro.power.pue import PUEAccountant
from repro.power.ups import SurgeViolation, UPSUnit

__all__ = [
    "CapDecision",
    "DEFAULT_PSTATES",
    "DEFAULT_TSTATES",
    "ENERGY_PROPORTIONAL",
    "EfficiencyCurve",
    "PDU_EFFICIENCY",
    "PState",
    "PStateTable",
    "PUEAccountant",
    "PowerCapper",
    "PowerDeliveryReport",
    "PowerNode",
    "ServerPowerModel",
    "SurgeViolation",
    "TRANSFORMER_EFFICIENCY",
    "TState",
    "TYPICAL_2008_SERVER",
    "UPSUnit",
    "UPS_DOUBLE_CONVERSION_EFFICIENCY",
    "build_tier2_power_tree",
    "summarize",
]
