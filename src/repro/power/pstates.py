"""CPU performance (P) and throttling (T) states.

Section 4.2 of the paper: modern CPUs expose *P-states* (joint
voltage/frequency reduction inside the C0 working state) and *T-states*
(duty-cycle throttling via STPCLK that does not change the clock rate).

The model here captures the two facts every DVFS policy in this code
base relies on:

* dynamic power scales roughly with ``V² · f`` — so a P-state buys a
  super-linear power reduction for a linear capacity reduction;
* a T-state merely skips duty cycles — capacity falls linearly while
  voltage stays put, so it saves *less* power per lost cycle than a
  P-state (which is why policies prefer P-states and keep T-states for
  emergencies such as power capping).
"""

from __future__ import annotations

import dataclasses

__all__ = ["PState", "TState", "PStateTable", "DEFAULT_PSTATES",
           "DEFAULT_TSTATES"]


@dataclasses.dataclass(frozen=True)
class PState:
    """One performance state of a CPU.

    ``frequency_ghz`` and ``voltage_v`` are relative to physical
    hardware; only their ratios to P0 matter to the models.
    """

    name: str
    frequency_ghz: float
    voltage_v: float

    def __post_init__(self):
        if self.frequency_ghz <= 0:
            raise ValueError(f"frequency must be positive: {self}")
        if self.voltage_v <= 0:
            raise ValueError(f"voltage must be positive: {self}")


@dataclasses.dataclass(frozen=True)
class TState:
    """One throttling state: the CPU runs ``duty_cycle`` of the time."""

    name: str
    duty_cycle: float

    def __post_init__(self):
        if not 0.0 < self.duty_cycle <= 1.0:
            raise ValueError(f"duty cycle must be in (0, 1]: {self}")


#: A representative 2008-era server CPU ladder (Xeon-style).
DEFAULT_PSTATES = (
    PState("P0", frequency_ghz=3.0, voltage_v=1.25),
    PState("P1", frequency_ghz=2.7, voltage_v=1.18),
    PState("P2", frequency_ghz=2.4, voltage_v=1.12),
    PState("P3", frequency_ghz=2.1, voltage_v=1.05),
    PState("P4", frequency_ghz=1.8, voltage_v=1.00),
    PState("P5", frequency_ghz=1.5, voltage_v=0.95),
)

#: T-states throttle in 12.5 % duty-cycle steps (ACPI style), T0 = full.
DEFAULT_TSTATES = tuple(
    TState(f"T{i}", duty_cycle=1.0 - i * 0.125) for i in range(8)
)


class PStateTable:
    """An ordered ladder of P-states plus optional T-states.

    Index 0 is the fastest state.  The table answers the two questions
    controllers ask: *how much capacity* does a state deliver and *how
    much dynamic power* does it draw, both relative to P0.
    """

    def __init__(self, pstates=DEFAULT_PSTATES, tstates=DEFAULT_TSTATES):
        pstates = tuple(pstates)
        if not pstates:
            raise ValueError("need at least one P-state")
        freqs = [p.frequency_ghz for p in pstates]
        if freqs != sorted(freqs, reverse=True):
            raise ValueError("P-states must be ordered fastest first")
        self.pstates = pstates
        self.tstates = tuple(tstates)
        self._p0 = pstates[0]
        # Memoized (pstate, tstate) fraction tables.  Both fractions
        # are pure functions of the immutable state ladders, and they
        # sit on the hottest path in the codebase (every power-model
        # evaluation), so precompute them once.  The expressions match
        # the documented formulas term for term, keeping the lookups
        # bit-identical to the arithmetic they replace.
        f0 = self._p0.frequency_ghz
        v0 = self._p0.voltage_v
        duties = [t.duty_cycle for t in self.tstates] or [1.0]
        self._cap_frac = [
            [(p.frequency_ghz / f0) * duty for duty in duties]
            for p in pstates]
        self._dyn_frac = [
            [((p.voltage_v / v0) ** 2) * (p.frequency_ghz / f0) * duty
             for duty in duties]
            for p in pstates]

    def __len__(self) -> int:
        return len(self.pstates)

    def state(self, index: int) -> PState:
        """The P-state at ``index`` (0 = fastest)."""
        return self.pstates[index]

    def capacity_fraction(self, index: int, tstate: int = 0) -> float:
        """Usable compute capacity relative to P0/T0.

        Frequency ratio times duty cycle: a CPU at half clock and 75 %
        duty cycle delivers 0.375 of its P0 throughput.  Served from
        the memoized table built at construction.
        """
        if self.tstates:
            return self._cap_frac[index][tstate]
        return self._cap_frac[index][0]

    def dynamic_power_fraction(self, index: int, tstate: int = 0) -> float:
        """Dynamic power relative to P0/T0, using P ∝ V²·f.

        Throttling only gates the clock, so a T-state scales power by
        its duty cycle at an unchanged voltage.  Served from the
        memoized table built at construction.
        """
        if self.tstates:
            return self._dyn_frac[index][tstate]
        return self._dyn_frac[index][0]

    def slowest_state_meeting(self, required_capacity: float) -> int:
        """Deepest (most power-saving) P-state still delivering capacity.

        ``required_capacity`` is a fraction of P0 throughput.  Returns
        the index of the slowest adequate state; if even the fastest
        state is insufficient, returns 0 (run flat out).
        """
        if required_capacity > 1.0:
            return 0
        chosen = 0
        for index in range(len(self.pstates)):
            if self.capacity_fraction(index) >= required_capacity:
                chosen = index
            else:
                break
        return chosen

    def efficiency_gain(self, index: int) -> float:
        """Power saved per unit capacity lost, vs P0 (∞-safe).

        A figure of merit: P-states with high gain are worth entering.
        """
        cap_lost = 1.0 - self.capacity_fraction(index)
        power_saved = 1.0 - self.dynamic_power_fraction(index)
        if cap_lost <= 0:
            return 0.0
        return power_saved / cap_lost
