"""Uninterruptible power supply with a finite energy reserve.

Section 2.1: "The power capacity of a data center is primarily defined
by the capability of the UPS system, both in terms of steady load
handling and surge withstand."  This module models both dimensions:

* **steady rating** — continuous watts the UPS can condition;
* **surge rating** — short-duration overload tolerance with a budget
  that recovers over time (thermal model of the power electronics);
* **ride-through** — a battery (or flywheel) energy store that carries
  the critical load between a grid failure and generator start.
"""

from __future__ import annotations

from repro.sim import Environment, Monitor

__all__ = ["UPSUnit", "SurgeViolation"]


class SurgeViolation(RuntimeError):
    """The UPS was pushed beyond even its surge envelope."""


class UPSUnit:
    """A UPS with steady/surge ratings and stored ride-through energy.

    The unit integrates an "overload heat" budget: running above the
    steady rating accumulates stress proportional to the excess; the
    budget drains back when the load drops below rating.  Exceeding
    ``surge_rating_w`` instantly, or exhausting the overload budget,
    raises :class:`SurgeViolation` — the facility-safety event that
    power capping exists to prevent (§3.2).
    """

    def __init__(self, env: Environment, name: str = "ups",
                 steady_rating_w: float = 500_000.0,
                 surge_rating_w: float | None = None,
                 surge_budget_ws: float | None = None,
                 battery_energy_j: float = 500_000.0 * 300.0,
                 charge_rate_w: float = 50_000.0):
        if steady_rating_w <= 0:
            raise ValueError("steady rating must be positive")
        self.env = env
        self.name = name
        self.steady_rating_w = float(steady_rating_w)
        self.surge_rating_w = float(surge_rating_w
                                    if surge_rating_w is not None
                                    else steady_rating_w * 1.25)
        if self.surge_rating_w < self.steady_rating_w:
            raise ValueError("surge rating below steady rating")
        # Default: tolerate 10 % overload for 60 s before tripping.
        self.surge_budget_ws = float(
            surge_budget_ws if surge_budget_ws is not None
            else 0.10 * steady_rating_w * 60.0)
        self.battery_capacity_j = float(battery_energy_j)
        self.battery_j = float(battery_energy_j)
        self.charge_rate_w = float(charge_rate_w)

        self._load_w = 0.0
        self._stress_ws = 0.0
        self._on_grid = True
        self._nominal_rating_w: float | None = None
        self._last_update = env.now
        self.load_monitor = Monitor(env, f"{name}.load_w")
        self.battery_monitor = Monitor(env, f"{name}.battery_j")

    # ------------------------------------------------------------------
    @property
    def load_w(self) -> float:
        return self._load_w

    @property
    def on_grid(self) -> bool:
        return self._on_grid

    @property
    def stress_fraction(self) -> float:
        """How much of the overload budget is consumed (0–1)."""
        if self.surge_budget_ws == 0:
            return 0.0
        return min(self._stress_ws / self.surge_budget_ws, 1.0)

    @property
    def ride_through_s(self) -> float:
        """Seconds the battery sustains the *current* load."""
        if self._load_w <= 0:
            return float("inf")
        return self.battery_j / self._load_w

    # ------------------------------------------------------------------
    def _advance(self) -> None:
        """Integrate stress and battery state up to the current time."""
        now = self.env.now
        dt = now - self._last_update
        if dt < 0:
            raise RuntimeError("clock moved backwards")
        if dt == 0:
            return
        excess = self._load_w - self.steady_rating_w
        if excess > 0:
            self._stress_ws += excess * dt
            if self._stress_ws > self.surge_budget_ws:
                raise SurgeViolation(
                    f"{self.name}: sustained overload "
                    f"({self._load_w:.0f} W > {self.steady_rating_w:.0f} W) "
                    f"exhausted the surge budget")
        else:
            self._stress_ws = max(0.0, self._stress_ws + excess * dt)
        if self._on_grid:
            self.battery_j = min(self.battery_capacity_j,
                                 self.battery_j + self.charge_rate_w * dt)
        else:
            self.battery_j = max(0.0, self.battery_j - self._load_w * dt)
        self._last_update = now

    def set_load(self, watts: float) -> None:
        """Update the conditioned load (called by the metering layer)."""
        if watts < 0:
            raise ValueError(f"negative load {watts}")
        self._advance()
        if watts > self.surge_rating_w:
            raise SurgeViolation(
                f"{self.name}: instantaneous load {watts:.0f} W exceeds "
                f"surge rating {self.surge_rating_w:.0f} W")
        self._load_w = float(watts)
        self.load_monitor.record(watts)
        self.battery_monitor.record(self.battery_j)

    def derate(self, fraction: float) -> None:
        """Lose ``fraction`` of the steady rating (a module dropped out).

        §2.1: the UPS bank defines the facility's capacity; a branch
        failure shrinks that capacity mid-run and the load must be
        squeezed under the new ceiling before the overload budget
        burns through.
        """
        if not 0.0 < fraction < 1.0:
            raise ValueError(f"derate fraction must be in (0, 1), "
                             f"got {fraction}")
        self._advance()
        if self._nominal_rating_w is None:
            self._nominal_rating_w = self.steady_rating_w
        self.steady_rating_w = self._nominal_rating_w * (1.0 - fraction)

    def restore_rating(self) -> None:
        """Undo any derating after the failed module is replaced."""
        if self._nominal_rating_w is None:
            return
        self._advance()
        self.steady_rating_w = self._nominal_rating_w
        self._nominal_rating_w = None

    @property
    def nominal_rating_w(self) -> float:
        """Design rating (steady rating with any derate removed)."""
        if self._nominal_rating_w is not None:
            return self._nominal_rating_w
        return self.steady_rating_w

    def grid_failure(self) -> None:
        """Grid drops; the battery carries the load."""
        self._advance()
        self._on_grid = False

    def grid_restored(self) -> None:
        """Grid (or generator) back; battery recharges."""
        self._advance()
        self._on_grid = True

    def battery_depleted(self) -> bool:
        """True if the reserve is empty (load would drop)."""
        self._advance()
        return not self._on_grid and self.battery_j <= 0.0

    def headroom_w(self) -> float:
        """Steady-state watts still available under the rating."""
        return max(0.0, self.steady_rating_w - self._load_w)

    def max_servers(self, per_server_peak_w: float) -> int:
        """§2.1: how many servers the UPS rating can host.

        Conservative (non-oversubscribed) sizing: every server at
        nameplate peak simultaneously.
        """
        if per_server_peak_w <= 0:
            raise ValueError("per-server power must be positive")
        return int(self.steady_rating_w // per_server_peak_w)
