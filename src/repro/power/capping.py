"""Power capping: keeping an oversubscribed facility inside its rating.

Oversubscription (§3.1) deliberately hosts more servers than the
worst-case power budget allows.  The safety net is a capping policy:
when aggregate draw approaches the budget, throttle servers (P-states,
then T-states) until the draw fits.  The paper frames this as the
facility-protection question — "How to protect the safety of the
facility in the rare events that the demand exceeds the capacity?"
(§3.2) — and notes that placing power-uncorrelated workloads together
"will reduce the probability of power capping" (§5.2).
"""

from __future__ import annotations

import typing

from repro.sim import Environment, Monitor

__all__ = ["PowerCapper", "CapDecision", "CappableLoad"]


class CappableLoad(typing.Protocol):
    """What the capper needs from a server-like object.

    ``demand_w`` must report the power the load *would* draw with no
    cap applied — measuring post-cap draw would make the controller
    oscillate (cap → low reading → uncap → high reading → cap ...).
    """

    def demand_w(self) -> float: ...
    def power_w(self) -> float: ...
    def min_power_w(self) -> float: ...
    def apply_cap(self, watts: float) -> float: ...
    def remove_cap(self) -> None: ...


class CapDecision(typing.NamedTuple):
    """Outcome of one capping evaluation."""

    time: float
    demand_w: float
    budget_w: float
    capped: bool
    throttled_loads: int
    shed_w: float


class PowerCapper:
    """Enforce a power budget over a set of loads.

    Policy: proportional fair shedding.  When demand exceeds the
    budget, each load is capped to its fair proportional share of the
    budget, but never below its floor (``min_power_w``, the idle power
    — capping cannot turn servers off; that is the On/Off controller's
    job and operates on a much slower time scale).

    The capper is intentionally fast and local (a "micro-foundation"):
    it needs no model of the workload, only meters.  The macro layer
    decides the *budget*; the capper merely enforces it.
    """

    def __init__(self, env: Environment, budget_w: float,
                 loads: typing.Sequence[CappableLoad],
                 guard_band: float = 0.03,
                 actuator: typing.Callable | None = None):
        if budget_w <= 0:
            raise ValueError(f"budget must be positive, got {budget_w}")
        if not 0.0 <= guard_band < 1.0:
            raise ValueError(f"guard band must be in [0, 1), got {guard_band}")
        self.env = env
        self.budget_w = float(budget_w)
        self.loads = list(loads)
        self.guard_band = float(guard_band)
        #: Optional command channel ``actuator(load, watts | None)``
        #: (``None`` lifts the cap) returning the delivered draw.  The
        #: control plane installs one so cap commands cross its
        #: actuation bus; without it the capper calls loads directly.
        self.actuator = actuator
        self.decisions: list[CapDecision] = []
        self.demand_monitor = Monitor(env, "capper.demand_w")
        self.delivered_monitor = Monitor(env, "capper.delivered_w")
        self._fleet = None
        self._fleet_checked = False
        #: Engagement edge tracker for the flight recorder: tighten
        #: events fire per capped evaluation, release fires once on
        #: the capped → uncapped edge.
        self._was_capped = False

    def _vector_fleet(self):
        """The loads' VectorFleet when they are exactly its pool.

        The common-case wiring (capper over ``farm.servers`` with no
        actuator) lets the per-tick demand fold and the no-op uncap
        sweep run on fleet columns.  Checked once — pool membership
        cannot change after construction.
        """
        if not self._fleet_checked:
            self._fleet_checked = True
            if self.actuator is None and self.loads:
                fleet = getattr(self.loads[0], "_fleet", None)
                if (fleet is not None and len(self.loads) == fleet.n
                        and fleet.n_claimed == fleet.n):
                    objs = fleet.objs
                    if all(load is objs[i]
                           for i, load in enumerate(self.loads)):
                        self._fleet = fleet
        return self._fleet

    @property
    def trigger_w(self) -> float:
        """Draw level at which capping engages (budget minus guard)."""
        return self.budget_w * (1.0 - self.guard_band)

    def evaluate(self) -> CapDecision:
        """Measure, decide, and apply caps.  Returns the decision."""
        fleet = self._vector_fleet()
        demand = fleet.total_demand_w() if fleet is not None else None
        if demand is None:
            demand = sum(load.demand_w() for load in self.loads)
        self.demand_monitor.record(demand)

        if demand <= self.trigger_w:
            if fleet is not None:
                # ``remove_cap`` is a no-op unless a cap or T-state is
                # set; sweep only the rows where it would act.
                for i in fleet.uncap_candidates().tolist():
                    fleet.objs[i].remove_cap()
            else:
                for load in self.loads:
                    if self.actuator is not None:
                        self.actuator(load, None)
                    else:
                        load.remove_cap()
            decision = CapDecision(self.env.now, demand, self.budget_w,
                                   capped=False, throttled_loads=0,
                                   shed_w=0.0)
            self.decisions.append(decision)
            self.delivered_monitor.record(demand)
            tracer = self.env.tracer
            if tracer is not None and self._was_capped:
                tracer.event("cap.release", "actuation",
                             demand_w=demand, budget_w=self.budget_w)
            self._was_capped = False
            return decision

        # Proportional shares of the *trigger* level, floored at each
        # load's minimum; redistribute leftover headroom greedily so
        # the budget is fully used.
        target_total = self.trigger_w
        floors = [load.min_power_w() for load in self.loads]
        draws = [load.demand_w() for load in self.loads]
        total_draw = sum(draws) or 1.0
        shares = [max(f, target_total * d / total_draw)
                  for f, d in zip(floors, draws)]
        overshoot = sum(shares) - target_total
        if overshoot > 0:
            # Floors pushed us over; trim the loads with slack.
            slack = [s - f for s, f in zip(shares, floors)]
            total_slack = sum(slack)
            if total_slack > 0:
                trim = min(overshoot, total_slack)
                shares = [s - trim * (sl / total_slack)
                          for s, sl in zip(shares, slack)]

        throttled = 0
        delivered = 0.0
        for load, share, draw in zip(self.loads, shares, draws):
            if draw > share:
                if self.actuator is not None:
                    delivered += self.actuator(load, share)
                else:
                    delivered += load.apply_cap(share)
                throttled += 1
            else:
                if self.actuator is not None:
                    self.actuator(load, None)
                else:
                    load.remove_cap()
                delivered += draw
        decision = CapDecision(self.env.now, demand, self.budget_w,
                               capped=True, throttled_loads=throttled,
                               shed_w=max(0.0, demand - delivered))
        self.decisions.append(decision)
        self.delivered_monitor.record(delivered)
        tracer = self.env.tracer
        if tracer is not None:
            tracer.event("cap.tighten", "actuation", demand_w=demand,
                         budget_w=self.budget_w, throttled=throttled,
                         shed_w=decision.shed_w)
        self._was_capped = True
        return decision

    def run(self, period_s: float = 1.0):
        """Process generator: evaluate every ``period_s`` seconds."""
        if period_s <= 0:
            raise ValueError(f"period must be positive, got {period_s}")
        while True:
            self.evaluate()
            yield self.env.timeout(period_s)

    def capped_fraction(self) -> float:
        """Fraction of evaluations in which capping engaged."""
        if not self.decisions:
            return 0.0
        return sum(d.capped for d in self.decisions) / len(self.decisions)
