"""Power Usage Effectiveness accounting.

§2.2: "most data centers have power utilization effectiveness (PUE,
defined as the total power consumed by the data center over the total
power used to power computing devices) close to 2."

The accountant tracks the three components the paper identifies —
critical (IT) power, distribution losses, and mechanical (cooling)
power — and reports instantaneous and energy-weighted PUE.
"""

from __future__ import annotations

from repro.sim import Environment, Monitor

__all__ = ["PUEAccountant"]


class PUEAccountant:
    """Track IT / loss / mechanical power and derive PUE over time."""

    def __init__(self, env: Environment):
        self.env = env
        self.it_monitor = Monitor(env, "pue.it_w")
        self.loss_monitor = Monitor(env, "pue.distribution_loss_w")
        self.mechanical_monitor = Monitor(env, "pue.mechanical_w")
        self.pue_monitor = Monitor(env, "pue.instantaneous")

    def record(self, it_w: float, distribution_loss_w: float,
               mechanical_w: float) -> float:
        """Record one snapshot; returns the instantaneous PUE."""
        for name, value in (("it", it_w), ("loss", distribution_loss_w),
                            ("mechanical", mechanical_w)):
            if value < 0:
                raise ValueError(f"negative {name} power: {value}")
        self.it_monitor.record(it_w)
        self.loss_monitor.record(distribution_loss_w)
        self.mechanical_monitor.record(mechanical_w)
        pue = self.instantaneous(it_w, distribution_loss_w, mechanical_w)
        self.pue_monitor.record(pue)
        return pue

    @staticmethod
    def instantaneous(it_w: float, distribution_loss_w: float,
                      mechanical_w: float) -> float:
        """Total facility power over IT power (∞-safe at zero IT)."""
        if it_w <= 0:
            return float("inf")
        return (it_w + distribution_loss_w + mechanical_w) / it_w

    def energy_weighted_pue(self, start: float | None = None,
                            end: float | None = None) -> float:
        """Total facility energy over IT energy across an interval.

        This is the number operators quote: it weights each instant by
        how much energy actually flowed, unlike a mean of snapshots.
        """
        it_j = self.it_monitor.integral(start, end)
        if it_j <= 0:
            return float("inf")
        loss_j = self.loss_monitor.integral(start, end)
        mech_j = self.mechanical_monitor.integral(start, end)
        return (it_j + loss_j + mech_j) / it_j

    def total_facility_energy_j(self, start: float | None = None,
                                end: float | None = None) -> float:
        """Facility energy (IT + losses + mechanical) in joules."""
        return (self.it_monitor.integral(start, end)
                + self.loss_monitor.integral(start, end)
                + self.mechanical_monitor.integral(start, end))
