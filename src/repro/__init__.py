"""elastic-dc: elastic power management for Internet data centers.

A from-scratch reproduction of the system called for by

    Jie Liu, Feng Zhao, Xue Liu, Wenbo He,
    "Challenges Towards Elastic Power Management in Internet Data Centers",
    ICDCS 2009 Workshops.

The package is layered bottom-up:

``repro.sim``
    A deterministic discrete-event simulation kernel (event heap,
    generator-based processes, resources, monitors, seeded RNG streams).

``repro.power`` / ``repro.cooling`` / ``repro.workload`` / ``repro.cluster``
    The physical and cyber substrates of a data center: power delivery,
    air cooling, service demand, and machines/VMs.

``repro.control`` / ``repro.telemetry``
    The micro-foundations: feedback controllers (DVFS, On/Off,
    coordinated) and the multi-scale telemetry pipeline.

``repro.core``
    The paper's contribution: the macro-resource management layer that
    coordinates cyber and physical resources (Figure 4).

``repro.datacenter``
    Declarative assembly of complete data centers and the end-to-end
    co-simulation harness.
"""

from repro.sim import Environment

__version__ = "0.1.0"

__all__ = ["Environment", "__version__"]
