"""Request-level service simulation on the discrete-event kernel.

Where the rest of the library treats load as a fluid, this module
simulates *individual requests* through a multi-server queue —
the ground truth against which the analytic M/M/c formulas in
:mod:`repro.control.queueing` are validated (a cross-model property
test the paper's "queuing theory ... plays important roles" invites),
and the tool for studying tail latency, which fluid models cannot see.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.sim import Environment, Resource

__all__ = ["ServiceSimulation", "ServiceStats"]


@dataclasses.dataclass
class ServiceStats:
    """Latency and throughput measurements from one run."""

    completed: int
    mean_response_s: float
    p50_response_s: float
    p95_response_s: float
    p99_response_s: float
    mean_wait_s: float
    utilization: float

    @classmethod
    def from_samples(cls, responses: np.ndarray, waits: np.ndarray,
                     busy_s: float, servers: int,
                     duration_s: float) -> "ServiceStats":
        return cls(
            completed=len(responses),
            mean_response_s=float(responses.mean()),
            p50_response_s=float(np.percentile(responses, 50)),
            p95_response_s=float(np.percentile(responses, 95)),
            p99_response_s=float(np.percentile(responses, 99)),
            mean_wait_s=float(waits.mean()),
            utilization=busy_s / (servers * duration_s),
        )


class ServiceSimulation:
    """An open G/G/c queue driven by explicit request events.

    Defaults are exponential interarrivals and service times (M/M/c);
    pass ``service_sampler``/``arrival_sampler`` callables for other
    distributions (e.g. lognormal service for tail studies).
    """

    def __init__(self, servers: int, arrival_rate: float,
                 service_rate: float,
                 rng: np.random.Generator | None = None,
                 arrival_sampler=None, service_sampler=None):
        if servers < 1:
            raise ValueError("need at least one server")
        if arrival_rate <= 0 or service_rate <= 0:
            raise ValueError("rates must be positive")
        self.servers = servers
        self.arrival_rate = float(arrival_rate)
        self.service_rate = float(service_rate)
        self.rng = rng or np.random.default_rng(0)
        self.arrival_sampler = arrival_sampler or (
            lambda: self.rng.exponential(1.0 / self.arrival_rate))
        self.service_sampler = service_sampler or (
            lambda: self.rng.exponential(1.0 / self.service_rate))
        self._responses: list[float] = []
        self._waits: list[float] = []
        self._busy_s = 0.0

    def _request(self, env: Environment, pool: Resource) -> None:
        arrived = env.now
        with pool.request() as slot:
            yield slot
            started = env.now
            service = self.service_sampler()
            yield env.timeout(service)
        self._busy_s += service
        self._waits.append(started - arrived)
        self._responses.append(env.now - arrived)

    def _arrivals(self, env: Environment, pool: Resource,
                  horizon_s: float):
        while env.now < horizon_s:
            yield env.timeout(self.arrival_sampler())
            if env.now >= horizon_s:
                break
            env.process(self._request(env, pool))

    def run(self, duration_s: float,
            warmup_s: float = 0.0) -> ServiceStats:
        """Simulate and return statistics over the post-warmup window.

        Warmup completions are discarded so the stationary M/M/c
        formulas are a fair comparison.
        """
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        if warmup_s < 0 or warmup_s >= duration_s:
            raise ValueError("warmup must be in [0, duration)")
        env = Environment()
        pool = Resource(env, capacity=self.servers)
        env.process(self._arrivals(env, pool, duration_s))

        warm_index = [0]

        def mark(env):
            yield env.timeout(warmup_s)
            warm_index[0] = len(self._responses)

        if warmup_s > 0:
            env.process(mark(env))
        env.run(until=duration_s)
        # Let in-flight requests finish so their samples are counted.
        env.run()

        responses = np.array(self._responses[warm_index[0]:])
        waits = np.array(self._waits[warm_index[0]:])
        if len(responses) == 0:
            raise RuntimeError("no requests completed after warmup")
        return ServiceStats.from_samples(
            responses, waits, self._busy_s, self.servers,
            duration_s)
