"""Workload substrate: diurnal traces, flash crowds, arrival processes,
resource mixes, and scatter-gather requests (paper §3)."""

from repro.workload.arrivals import (
    MMPPArrivals,
    NonHomogeneousPoisson,
    PoissonArrivals,
)
from repro.workload.diurnal import (
    DiurnalProfile,
    MessengerTraceGenerator,
    WorkloadTrace,
)
from repro.workload.flashcrowd import (
    FlashCrowdEvent,
    animoto_demand,
    demand_trace,
)
from repro.workload.mix import (
    BALANCED,
    CPU_BOUND,
    DISK_BOUND,
    NETWORK_BOUND,
    ResourceProfile,
    peak_correlation,
)
from repro.workload.requests import FanoutModel, Request
from repro.workload.service_sim import ServiceSimulation, ServiceStats
from repro.workload.sessions import SessionTrace, flash_crowd_sessions
from repro.workload.traces import (
    load_trace,
    save_trace,
    trace_from_csv,
    trace_to_csv,
)

__all__ = [
    "BALANCED",
    "CPU_BOUND",
    "DISK_BOUND",
    "DiurnalProfile",
    "FanoutModel",
    "FlashCrowdEvent",
    "MMPPArrivals",
    "MessengerTraceGenerator",
    "NETWORK_BOUND",
    "NonHomogeneousPoisson",
    "PoissonArrivals",
    "Request",
    "ResourceProfile",
    "ServiceSimulation",
    "ServiceStats",
    "SessionTrace",
    "WorkloadTrace",
    "animoto_demand",
    "demand_trace",
    "flash_crowd_sessions",
    "load_trace",
    "peak_correlation",
    "save_trace",
    "trace_from_csv",
    "trace_to_csv",
]
