"""Request arrival processes.

Three generators cover the paper's demand regimes:

* :class:`PoissonArrivals` — stationary traffic (queueing analyses);
* :class:`NonHomogeneousPoisson` — diurnal traffic, via thinning
  against an arbitrary rate function such as a
  :class:`~repro.workload.diurnal.DiurnalProfile`;
* :class:`MMPPArrivals` — bursty traffic (Markov-modulated Poisson),
  the standard parsimonious model of flash-crowd-ish burstiness.

Each offers ``times(horizon)`` for trace generation and ``drive`` for
pushing arrival events into a simulation Store one by one.
``drive_bulk`` is the batched alternative: it pre-samples the whole
arrival train with ``times(horizon)`` and schedules every event in a
single vectorized calendar-ring insert — O(1) Python frames per
arrival replaced by one bulk pass.  The two drivers consume the RNG
in different orders (all gaps up front vs interleaved with the
simulation), so a given seed produces different — equally valid —
sample paths; pick one driver per experiment and stay with it.
"""

from __future__ import annotations

import typing

import numpy as np

from repro.sim import Environment, Store

__all__ = ["PoissonArrivals", "NonHomogeneousPoisson", "MMPPArrivals"]


def _drive_bulk(process, env: Environment, store: Store,
                horizon_s: float,
                make_item: typing.Callable[[float], object]) -> int:
    """Pre-sample ``process.times(horizon_s)`` and bulk-schedule puts.

    Returns the number of arrivals scheduled.  Items land in ``store``
    at their arrival instants via the kernel's bulk calendar insert.
    """
    times = np.asarray(process.times(horizon_s), dtype=np.float64)
    if times.size == 0:
        return 0
    now = env.now
    if now:
        times = times + now

    def put(event):
        store.put(make_item(event.value))

    env.schedule_callback_bulk(times, put)
    return int(times.size)


class PoissonArrivals:
    """Homogeneous Poisson process of rate ``rate_per_s``."""

    def __init__(self, rate_per_s: float, rng: np.random.Generator):
        if rate_per_s <= 0:
            raise ValueError(f"rate must be positive, got {rate_per_s}")
        self.rate_per_s = float(rate_per_s)
        self.rng = rng

    def times(self, horizon_s: float) -> np.ndarray:
        """All arrival instants in [0, horizon)."""
        if horizon_s <= 0:
            return np.array([])
        # Draw a safely-padded batch of exponentials, then trim.
        expected = self.rate_per_s * horizon_s
        n = int(expected + 6 * np.sqrt(expected + 1) + 16)
        gaps = self.rng.exponential(1.0 / self.rate_per_s, size=n)
        times = np.cumsum(gaps)
        while times[-1] < horizon_s:  # pragma: no cover - rare top-up
            extra = self.rng.exponential(1.0 / self.rate_per_s, size=n)
            times = np.concatenate([times, times[-1] + np.cumsum(extra)])
        return times[times < horizon_s]

    def drive(self, env: Environment, store: Store,
              make_item: typing.Callable[[float], object] = lambda t: t):
        """Process generator: push ``make_item(now)`` at each arrival."""
        while True:
            gap = self.rng.exponential(1.0 / self.rate_per_s)
            yield env.timeout(gap)
            yield store.put(make_item(env.now))

    def drive_bulk(self, env: Environment, store: Store,
                   horizon_s: float,
                   make_item: typing.Callable[[float], object]
                   = lambda t: t) -> int:
        """Pre-sample the train to ``now + horizon_s``; bulk-schedule.

        Returns the arrival count.  See the module docstring for how
        this differs from :meth:`drive` in RNG consumption.
        """
        return _drive_bulk(self, env, store, horizon_s, make_item)


class NonHomogeneousPoisson:
    """Poisson process with time-varying rate, via Lewis-Shedler thinning.

    ``rate_fn(t)`` gives instantaneous arrivals/second; ``rate_max``
    must dominate it over the horizon of interest (checked lazily —
    a violation raises rather than silently under-sampling).
    """

    def __init__(self, rate_fn: typing.Callable[[float], float],
                 rate_max: float, rng: np.random.Generator):
        if rate_max <= 0:
            raise ValueError(f"rate_max must be positive, got {rate_max}")
        self.rate_fn = rate_fn
        self.rate_max = float(rate_max)
        self.rng = rng

    def _check(self, rate: float, t: float) -> float:
        if rate > self.rate_max * (1 + 1e-9):
            raise ValueError(
                f"rate_fn({t:.1f}) = {rate:.3f} exceeds rate_max "
                f"{self.rate_max}; thinning bound violated")
        return rate

    def times(self, horizon_s: float) -> np.ndarray:
        """All arrival instants in [0, horizon)."""
        out = []
        t = 0.0
        while True:
            t += self.rng.exponential(1.0 / self.rate_max)
            if t >= horizon_s:
                break
            rate = self._check(self.rate_fn(t), t)
            if self.rng.random() < rate / self.rate_max:
                out.append(t)
        return np.array(out)

    def drive(self, env: Environment, store: Store,
              make_item: typing.Callable[[float], object] = lambda t: t):
        """Process generator: thinned arrivals into ``store``."""
        while True:
            yield env.timeout(self.rng.exponential(1.0 / self.rate_max))
            rate = self._check(self.rate_fn(env.now), env.now)
            if self.rng.random() < rate / self.rate_max:
                yield store.put(make_item(env.now))

    def drive_bulk(self, env: Environment, store: Store,
                   horizon_s: float,
                   make_item: typing.Callable[[float], object]
                   = lambda t: t) -> int:
        """Pre-thin the train to ``now + horizon_s``; bulk-schedule.

        Note: the rate function is evaluated at offsets from the call
        time (``times`` samples on [0, horizon)), so drive_bulk at
        t > 0 shifts the profile — call it at t = 0 or pass a rate
        function aware of the offset.
        """
        return _drive_bulk(self, env, store, horizon_s, make_item)


class MMPPArrivals:
    """Markov-modulated Poisson process.

    The modulating chain holds in state ``i`` for Exp(hold_s[i]) and
    then jumps according to ``transition[i]``; while in state ``i``
    arrivals are Poisson with ``rates_per_s[i]``.  Two states with a
    10:1 rate ratio make a serviceable burst model.
    """

    def __init__(self, rates_per_s: typing.Sequence[float],
                 hold_s: typing.Sequence[float],
                 transition: typing.Sequence[typing.Sequence[float]],
                 rng: np.random.Generator):
        rates = [float(r) for r in rates_per_s]
        holds = [float(h) for h in hold_s]
        matrix = np.asarray(transition, dtype=float)
        if len(rates) != len(holds) or matrix.shape != (len(rates), len(rates)):
            raise ValueError("inconsistent MMPP dimensions")
        if any(r < 0 for r in rates) or any(h <= 0 for h in holds):
            raise ValueError("rates must be >= 0 and holds > 0")
        if not np.allclose(matrix.sum(axis=1), 1.0):
            raise ValueError("transition rows must sum to 1")
        self.rates = rates
        self.holds = holds
        self.transition = matrix
        self.rng = rng

    def times(self, horizon_s: float) -> np.ndarray:
        """All arrival instants in [0, horizon)."""
        out: list[float] = []
        state = 0
        t = 0.0
        while t < horizon_s:
            dwell = self.rng.exponential(self.holds[state])
            end = min(t + dwell, horizon_s)
            rate = self.rates[state]
            if rate > 0:
                tau = t
                while True:
                    tau += self.rng.exponential(1.0 / rate)
                    if tau >= end:
                        break
                    out.append(tau)
            t = end
            state = int(self.rng.choice(len(self.rates),
                                        p=self.transition[state]))
        return np.array(out)

    def drive_bulk(self, env: Environment, store: Store,
                   horizon_s: float,
                   make_item: typing.Callable[[float], object]
                   = lambda t: t) -> int:
        """Pre-sample the modulated train; bulk-schedule the puts."""
        return _drive_bulk(self, env, store, horizon_s, make_item)

    def burstiness_index(self, horizon_s: float,
                         window_s: float = 60.0) -> float:
        """Index of dispersion of counts: Var/Mean per window.

        1.0 for Poisson; > 1 indicates burstiness.  Used by tests to
        confirm the model actually produces bursty traffic.
        """
        arrivals = self.times(horizon_s)
        edges = np.arange(0.0, horizon_s + window_s, window_s)
        counts, _ = np.histogram(arrivals, bins=edges)
        mean = counts.mean()
        if mean == 0:
            return 0.0
        return float(counts.var() / mean)
