"""Millions of user sessions, collapsed to a fluid demand trace.

The serve load generator needs to drive the daemon with "millions of
simulated user sessions" without ever materializing millions of
discrete-event arrivals: the fluid request path (the M/M/1-mixture
farm) consumes *servers' worth of concurrent work*, so the sessions
only matter through their aggregate concurrency.  This module draws
every session vectorized — start times from a multinomial allocation
over a rate profile (diurnal base × optional flash-crowd multiplier),
exponential think/hold durations — and reduces them *exactly* to a
piecewise-constant mean-concurrency trace via sorted prefix sums:

    busy(t) = Σ_j min(e_j, t) − Σ_j min(s_j, t)

evaluated at every bin edge, so the per-bin mean concurrency is the
true time-weighted average, not a sampled approximation.  Two million
sessions reduce in tens of milliseconds.
"""

from __future__ import annotations

import dataclasses
import typing

import numpy as np

from repro.workload.flashcrowd import FlashCrowdEvent

__all__ = ["SessionTrace", "flash_crowd_sessions"]


@dataclasses.dataclass(frozen=True)
class SessionTrace:
    """N sessions reduced to a mean-concurrency-per-bin trace."""

    #: Left edge of each bin (seconds).
    times: np.ndarray
    #: Time-weighted mean concurrent sessions inside each bin.
    concurrency: np.ndarray
    #: Total sessions drawn.
    sessions: int
    step_s: float

    @property
    def peak_concurrency(self) -> float:
        return float(self.concurrency.max()) if len(self.concurrency) \
            else 0.0

    def demand_values(self, peak_work: float) -> np.ndarray:
        """Scale concurrency so its peak lands at ``peak_work``.

        The farm's demand signal is in servers' worth of work; the
        caller picks where the crowd's peak should sit relative to
        fleet capacity and the whole trace scales with it.
        """
        if peak_work <= 0:
            raise ValueError("peak work must be positive")
        peak = self.peak_concurrency
        if peak == 0.0:
            return np.zeros_like(self.concurrency)
        return self.concurrency * (peak_work / peak)


def _mean_concurrency(starts: np.ndarray, ends: np.ndarray,
                      edges: np.ndarray) -> np.ndarray:
    """Exact time-weighted mean concurrency between consecutive edges.

    ``Σ_j min(x_j, t)`` over sorted ``x`` is ``prefix[k] + t·(n−k)``
    with ``k = searchsorted(x, t)``; the busy-seconds integral at every
    edge is that sum over ends minus the sum over starts, and the
    per-bin mean is the integral's increment over the bin width.
    """
    def clipped_sum(sorted_x: np.ndarray, prefix: np.ndarray,
                    t: np.ndarray) -> np.ndarray:
        k = np.searchsorted(sorted_x, t, side="right")
        return prefix[k] + t * (len(sorted_x) - k)

    starts = np.sort(starts)
    ends = np.sort(ends)
    sp = np.concatenate(([0.0], np.cumsum(starts)))
    ep = np.concatenate(([0.0], np.cumsum(ends)))
    integral = clipped_sum(ends, ep, edges) - clipped_sum(starts, sp, edges)
    return np.diff(integral) / np.diff(edges)


def flash_crowd_sessions(sessions: int, duration_s: float,
                         step_s: float = 300.0,
                         event: FlashCrowdEvent | None = None,
                         base: typing.Callable[[float], float] | None = None,
                         mean_session_s: float = 600.0,
                         seed: int = 0) -> SessionTrace:
    """Draw ``sessions`` user sessions against a flash-crowd profile.

    Session start rates follow ``base(t) × event.multiplier(t)`` (base
    defaults to flat; pass a :class:`~repro.workload.DiurnalProfile`
    for the paper's day/night shape), allocated to ``step_s`` bins by a
    single multinomial draw and placed uniformly inside their bin.
    Durations are exponential with mean ``mean_session_s``.  Fully
    deterministic per ``seed``.
    """
    if sessions <= 0:
        raise ValueError("need at least one session")
    if duration_s <= 0 or step_s <= 0:
        raise ValueError("durations must be positive")
    if mean_session_s <= 0:
        raise ValueError("mean session length must be positive")
    rng = np.random.default_rng(seed)
    edges = np.arange(0.0, duration_s + step_s, step_s)
    edges = edges[edges <= duration_s]
    if edges[-1] < duration_s:
        edges = np.append(edges, duration_s)
    centers = (edges[:-1] + edges[1:]) / 2.0
    weights = np.ones_like(centers)
    if base is not None:
        weights *= np.array([base(t) for t in centers])
    if event is not None:
        weights *= np.array([event.multiplier(t) for t in centers])
    total = weights.sum()
    if total <= 0:
        raise ValueError("rate profile is zero everywhere")
    counts = rng.multinomial(sessions, weights / total)

    widths = np.diff(edges)
    starts = (np.repeat(edges[:-1], counts)
              + rng.random(sessions) * np.repeat(widths, counts))
    durations = rng.exponential(mean_session_s, sessions)
    ends = np.minimum(starts + durations, duration_s)

    concurrency = _mean_concurrency(starts, ends, edges)
    return SessionTrace(times=edges[:-1], concurrency=concurrency,
                        sessions=int(sessions), step_s=float(step_s))
