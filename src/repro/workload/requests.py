"""Requests and scatter-gather fan-out.

§3: "For modern Internet application, each user request may hit
hundreds to thousands of servers at various locations, which in turn,
generates a power consumption spike of certain size at the servers."

The :class:`FanoutModel` captures the latency-and-power signature of
that pattern: a front-end scatters sub-requests to ``fanout`` servers
and waits for the slowest (or the ``quorum``-th fastest) response, so
user-visible latency is an order statistic of the per-server service
times — the reason tail latency, not mean latency, governs user
experience and why slowing a few servers (DVFS) can hurt a whole
request.
"""

from __future__ import annotations

import dataclasses

import numpy as np

__all__ = ["Request", "FanoutModel"]


@dataclasses.dataclass
class Request:
    """One user request traversing the service."""

    arrival_s: float
    service_s: float
    fanout: int = 1
    completed_s: float | None = None

    def __post_init__(self):
        if self.service_s < 0:
            raise ValueError("service time cannot be negative")
        if self.fanout < 1:
            raise ValueError("fanout must be at least 1")

    @property
    def latency_s(self) -> float:
        """End-to-end latency (NaN until completed)."""
        if self.completed_s is None:
            return float("nan")
        return self.completed_s - self.arrival_s


class FanoutModel:
    """Latency and energy of scatter-gather requests.

    Per-server sub-request times are lognormal with median
    ``median_service_s`` and dispersion ``sigma``; user latency is the
    ``quorum``-th order statistic of the fan-out plus a fixed
    aggregation overhead.
    """

    def __init__(self, median_service_s: float = 0.010,
                 sigma: float = 0.5,
                 aggregation_s: float = 0.002,
                 rng: np.random.Generator | None = None):
        if median_service_s <= 0:
            raise ValueError("median service time must be positive")
        if sigma < 0:
            raise ValueError("sigma cannot be negative")
        self.median_service_s = float(median_service_s)
        self.sigma = float(sigma)
        self.aggregation_s = float(aggregation_s)
        self.rng = rng or np.random.default_rng(0)

    def subrequest_times(self, fanout: int,
                         slowdown: float = 1.0) -> np.ndarray:
        """Per-server service times for one scatter (seconds).

        ``slowdown`` multiplies every time — e.g. 2.0 when the servers
        run at half frequency in a deep P-state.
        """
        if fanout < 1:
            raise ValueError("fanout must be at least 1")
        if slowdown <= 0:
            raise ValueError("slowdown must be positive")
        mu = np.log(self.median_service_s * slowdown)
        return self.rng.lognormal(mu, self.sigma, size=fanout)

    def request_latency(self, fanout: int, quorum: int | None = None,
                        slowdown: float = 1.0) -> float:
        """Latency of one request: quorum-th order statistic + merge."""
        times = self.subrequest_times(fanout, slowdown)
        k = fanout if quorum is None else quorum
        if not 1 <= k <= fanout:
            raise ValueError(f"quorum {k} outside [1, {fanout}]")
        return float(np.partition(times, k - 1)[k - 1]) + self.aggregation_s

    def latency_percentile(self, fanout: int, percentile: float,
                           trials: int = 2_000, quorum: int | None = None,
                           slowdown: float = 1.0) -> float:
        """Monte-Carlo latency percentile over ``trials`` requests."""
        if not 0 < percentile < 100:
            raise ValueError("percentile must be in (0, 100)")
        samples = [self.request_latency(fanout, quorum, slowdown)
                   for _ in range(trials)]
        return float(np.percentile(samples, percentile))

    def power_spike_w(self, fanout: int, per_server_dynamic_w: float) -> float:
        """Instantaneous facility power spike one request causes.

        Each touched server briefly runs its dynamic range; the spike
        scales with fan-out — the paper's "power consumption spike of
        certain size" whose *correlation* across requests is what
        oversubscription must statistically absorb.
        """
        if per_server_dynamic_w < 0:
            raise ValueError("dynamic power cannot be negative")
        return fanout * per_server_dynamic_w
