"""Diurnal demand shapes (paper Figure 3).

§3: "the number of users in the early afternoon is almost twice as
much as those after midnight, and the total demand in weekdays are
higher than that in weekends.  We can also see the flash crowd
effects, where a large number of users login in a short period of
time."

The Messenger production trace does not exist outside Microsoft; this
module re-synthesizes it from the *shapes* the paper reports (see
DESIGN.md, Substitutions).  Everything is deterministic given a seed.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from repro.sim import RandomStreams

__all__ = ["DiurnalProfile", "MessengerTraceGenerator", "WorkloadTrace"]

_HOUR_S = 3600.0
_DAY_S = 86_400.0
_WEEK_S = 7 * _DAY_S


class DiurnalProfile:
    """Deterministic demand shape over a week, normalized to peak 1.0.

    Parameters
    ----------
    day_night_ratio:
        Early-afternoon demand over after-midnight demand (paper: ≈ 2).
    weekend_factor:
        Weekend demand relative to weekday demand (paper: < 1).
    peak_hour / trough_hour:
        Local times of the diurnal extremes.
    """

    def __init__(self, day_night_ratio: float = 2.0,
                 weekend_factor: float = 0.8,
                 peak_hour: float = 14.0,
                 trough_hour: float = 4.0):
        if day_night_ratio <= 1.0:
            raise ValueError("day/night ratio must exceed 1")
        if not 0.0 < weekend_factor <= 1.0:
            raise ValueError("weekend factor must be in (0, 1]")
        self.day_night_ratio = float(day_night_ratio)
        self.weekend_factor = float(weekend_factor)
        self.peak_hour = float(peak_hour)
        self.trough_hour = float(trough_hour)
        # Sinusoid 1 + a·cos(...) has ratio (1+a)/(1-a) = R  =>  a.
        self._amplitude = (day_night_ratio - 1.0) / (day_night_ratio + 1.0)

    def hour_of_day_factor(self, t_s: float) -> float:
        """Diurnal multiplier at simulation time ``t_s`` (t=0 is
        midnight Monday)."""
        hour = (t_s % _DAY_S) / _HOUR_S
        phase = 2 * math.pi * (hour - self.peak_hour) / 24.0
        return 1.0 + self._amplitude * math.cos(phase)

    def day_of_week_factor(self, t_s: float) -> float:
        """Weekday/weekend multiplier (day 0 = Monday)."""
        day = int(t_s // _DAY_S) % 7
        return self.weekend_factor if day >= 5 else 1.0

    def __call__(self, t_s: float) -> float:
        """Demand shape at ``t_s``, normalized so the weekly peak is 1."""
        raw = self.hour_of_day_factor(t_s) * self.day_of_week_factor(t_s)
        return raw / (1.0 + self._amplitude)


@dataclasses.dataclass
class WorkloadTrace:
    """A sampled demand trace (Figure 3 data product).

    Attributes
    ----------
    times_s:
        Sample times.
    login_rate:
        New-user login rate at each sample (users/second).
    connections:
        Concurrent connection count at each sample.
    """

    times_s: np.ndarray
    login_rate: np.ndarray
    connections: np.ndarray

    def __post_init__(self):
        n = len(self.times_s)
        if len(self.login_rate) != n or len(self.connections) != n:
            raise ValueError("trace arrays must have equal length")

    @property
    def step_s(self) -> float:
        """Sampling interval (assumes a regular grid)."""
        if len(self.times_s) < 2:
            return 0.0
        return float(self.times_s[1] - self.times_s[0])

    def normalized(self, peak_connections: float = 1_000_000.0,
                   peak_login_rate: float = 1_400.0) -> "WorkloadTrace":
        """Rescale to the paper's normalization (1 M users, 1400/s)."""
        conn_scale = peak_connections / self.connections.max()
        rate_scale = peak_login_rate / self.login_rate.max()
        return WorkloadTrace(self.times_s,
                             self.login_rate * rate_scale,
                             self.connections * conn_scale)

    def window(self, start_s: float, end_s: float) -> "WorkloadTrace":
        """Slice the trace to [start_s, end_s)."""
        mask = (self.times_s >= start_s) & (self.times_s < end_s)
        return WorkloadTrace(self.times_s[mask], self.login_rate[mask],
                             self.connections[mask])

    def mean_over_hours(self, start_hour: float, end_hour: float,
                        field: str = "connections",
                        weekdays_only: bool = False) -> float:
        """Average a field over a daily local-time window.

        Used by tests and benchmarks to check the Figure 3 shapes
        (e.g. early-afternoon vs after-midnight connection counts).
        """
        values = getattr(self, field)
        hours = (self.times_s % _DAY_S) / _HOUR_S
        mask = (hours >= start_hour) & (hours < end_hour)
        if weekdays_only:
            day = (self.times_s // _DAY_S).astype(int) % 7
            mask &= day < 5
        if not mask.any():
            raise ValueError("window selects no samples")
        return float(values[mask].mean())


class MessengerTraceGenerator:
    """Synthesize a Messenger-like weekly trace (login rate + users).

    The generator is a fluid model: logins arrive at a modulated rate
    and sessions end at rate ``connections / mean_session_s``, so

        dN/dt = λ(t) − N(t) / T_session.

    On top of the deterministic diurnal/weekly shape we add smooth
    multiplicative noise (AR(1) in log space) and optional flash
    crowds — short multiplicative spikes of the *login rate*, matching
    the sharp spikes in the paper's Figure 3 lower trace.
    """

    def __init__(self, profile: DiurnalProfile | None = None,
                 base_login_rate: float = 1_000.0,
                 mean_session_s: float = 7_200.0,
                 noise_sigma: float = 0.05,
                 noise_correlation: float = 0.97,
                 flash_crowds_per_week: float = 2.0,
                 flash_magnitude: tuple[float, float] = (3.0, 8.0),
                 flash_duration_s: tuple[float, float] = (600.0, 1_800.0),
                 seed: int = 0):
        if base_login_rate <= 0:
            raise ValueError("base login rate must be positive")
        if mean_session_s <= 0:
            raise ValueError("mean session must be positive")
        if not 0.0 <= noise_correlation < 1.0:
            raise ValueError("noise correlation must be in [0, 1)")
        # The session filter (time constant = mean session) damps the
        # diurnal amplitude of *connections* relative to the login
        # rate, so the default login profile swings harder than 2:1 to
        # land the paper's ≈2:1 connection-count swing after damping.
        self.profile = profile or DiurnalProfile(day_night_ratio=2.4)
        self.base_login_rate = float(base_login_rate)
        self.mean_session_s = float(mean_session_s)
        self.noise_sigma = float(noise_sigma)
        self.noise_correlation = float(noise_correlation)
        self.flash_crowds_per_week = float(flash_crowds_per_week)
        self.flash_magnitude = flash_magnitude
        self.flash_duration_s = flash_duration_s
        self.streams = RandomStreams(seed)

    def _flash_envelope(self, times: np.ndarray,
                        duration_s: float) -> np.ndarray:
        """Multiplier envelope of flash-crowd spikes over the horizon."""
        rng = self.streams.get("flash")
        envelope = np.ones_like(times)
        expected = self.flash_crowds_per_week * duration_s / _WEEK_S
        count = rng.poisson(expected)
        for _ in range(count):
            start = rng.uniform(0.0, duration_s)
            length = rng.uniform(*self.flash_duration_s)
            magnitude = rng.uniform(*self.flash_magnitude)
            ramp = length * 0.2
            # Fast ramp up, plateau, fast ramp down.
            rel = (times - start)
            up = np.clip(rel / ramp, 0.0, 1.0)
            down = np.clip((length - rel) / ramp, 0.0, 1.0)
            bump = np.clip(np.minimum(up, down), 0.0, 1.0)
            envelope = np.maximum(envelope, 1.0 + (magnitude - 1.0) * bump)
        return envelope

    def _noise(self, n: int) -> np.ndarray:
        """Smooth multiplicative noise (lognormal AR(1))."""
        if self.noise_sigma == 0.0:
            return np.ones(n)
        rng = self.streams.get("noise")
        rho = self.noise_correlation
        innovations = rng.normal(0.0, self.noise_sigma * math.sqrt(1 - rho**2),
                                 size=n)
        log_noise = np.empty(n)
        log_noise[0] = rng.normal(0.0, self.noise_sigma)
        for i in range(1, n):
            log_noise[i] = rho * log_noise[i - 1] + innovations[i]
        return np.exp(log_noise)

    def generate(self, duration_s: float = _WEEK_S,
                 step_s: float = 60.0) -> WorkloadTrace:
        """Produce a trace of ``duration_s`` at ``step_s`` resolution."""
        if duration_s <= 0 or step_s <= 0:
            raise ValueError("duration and step must be positive")
        times = np.arange(0.0, duration_s, step_s)
        shape = np.array([self.profile(t) for t in times])
        rate = self.base_login_rate * shape * self._noise(len(times))
        rate *= self._flash_envelope(times, duration_s)

        # Fluid integration of the session balance.
        connections = np.empty_like(rate)
        decay = math.exp(-step_s / self.mean_session_s)
        # Start at the steady state for the initial rate.
        n = rate[0] * self.mean_session_s
        for i, lam in enumerate(rate):
            target = lam * self.mean_session_s
            n = target + (n - target) * decay
            connections[i] = n
        return WorkloadTrace(times, rate, connections)
