"""Persistence and interchange for workload traces.

Reproduction studies live and die by trace hygiene: the exact demand
series behind a result must be storable, diffable, and reloadable.
This module round-trips :class:`~repro.workload.diurnal.WorkloadTrace`
objects through a simple CSV format (time_s, login_rate, connections)
with a one-line metadata header.
"""

from __future__ import annotations

import io
import pathlib

import numpy as np

from repro.workload.diurnal import WorkloadTrace

__all__ = ["save_trace", "load_trace", "trace_to_csv", "trace_from_csv"]

_HEADER = "time_s,login_rate,connections"


def trace_to_csv(trace: WorkloadTrace) -> str:
    """Serialize a trace to CSV text."""
    out = io.StringIO()
    out.write(f"# elastic-dc workload trace v1, {len(trace.times_s)} rows\n")
    out.write(_HEADER + "\n")
    for t, rate, conn in zip(trace.times_s, trace.login_rate,
                             trace.connections):
        out.write(f"{t:.6g},{rate:.10g},{conn:.10g}\n")
    return out.getvalue()


def trace_from_csv(text: str) -> WorkloadTrace:
    """Parse a trace from CSV text (inverse of :func:`trace_to_csv`)."""
    lines = [line.strip() for line in text.splitlines()
             if line.strip() and not line.startswith("#")]
    if not lines or lines[0] != _HEADER:
        raise ValueError(f"expected header {_HEADER!r}")
    rows = [line.split(",") for line in lines[1:]]
    if not rows:
        raise ValueError("trace has no data rows")
    if any(len(row) != 3 for row in rows):
        raise ValueError("malformed row: expected 3 columns")
    data = np.array([[float(cell) for cell in row] for row in rows])
    times = data[:, 0]
    if (np.diff(times) <= 0).any():
        raise ValueError("times must be strictly increasing")
    return WorkloadTrace(times, data[:, 1], data[:, 2])


def save_trace(trace: WorkloadTrace, path) -> pathlib.Path:
    """Write a trace to ``path``; returns the resolved path."""
    path = pathlib.Path(path)
    path.write_text(trace_to_csv(trace))
    return path.resolve()


def load_trace(path) -> WorkloadTrace:
    """Read a trace written by :func:`save_trace`."""
    return trace_from_csv(pathlib.Path(path).read_text())
