"""Flash crowds and the Animoto surge (paper §3, quoting [5]).

    "When Animoto made its service available via Facebook, it
    experienced a demand surge that resulted in growing from 50
    servers to 3500 servers in three days ... After the peak
    subsided, traffic fell to a level that was well below the peak."

This module produces demand traces in units of *servers' worth of
work*, suitable for driving autoscalers directly (EXP-FLASH).
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["FlashCrowdEvent", "animoto_demand", "demand_trace"]

_DAY_S = 86_400.0


class FlashCrowdEvent:
    """One multiplicative demand surge with ramp, plateau, and decay.

    The rise is exponential (viral spread doubles at a constant rate),
    the fall is exponential with a slower constant (interest wanes
    more gently than it spikes), and after the event demand settles at
    ``aftermath`` times the pre-event level — above 1.0 because some
    of the crowd sticks around.
    """

    def __init__(self, start_s: float, rise_s: float, plateau_s: float,
                 decay_s: float, magnitude: float, aftermath: float = 1.0):
        if min(rise_s, plateau_s, decay_s) < 0:
            raise ValueError("phase durations cannot be negative")
        if magnitude < 1.0:
            raise ValueError("magnitude must be >= 1 (it is a multiplier)")
        if aftermath < 0:
            raise ValueError("aftermath cannot be negative")
        self.start_s = float(start_s)
        self.rise_s = float(rise_s)
        self.plateau_s = float(plateau_s)
        self.decay_s = float(decay_s)
        self.magnitude = float(magnitude)
        self.aftermath = float(aftermath)

    def multiplier(self, t_s: float) -> float:
        """Demand multiplier at absolute time ``t_s``."""
        rel = t_s - self.start_s
        if rel < 0:
            return 1.0
        if rel < self.rise_s:
            # Exponential approach: 1 -> magnitude over the rise.
            frac = rel / self.rise_s
            return self.magnitude ** frac
        rel -= self.rise_s
        if rel < self.plateau_s:
            return self.magnitude
        rel -= self.plateau_s
        if self.decay_s == 0:
            return self.aftermath
        # Exponential decay toward the aftermath level.
        tail = (self.magnitude - self.aftermath) \
            * math.exp(-3.0 * rel / self.decay_s)
        return self.aftermath + tail


def animoto_demand(step_s: float = 3600.0,
                   duration_s: float = 14 * _DAY_S,
                   baseline_servers: float = 50.0,
                   peak_servers: float = 3500.0,
                   rise_days: float = 3.0,
                   plateau_days: float = 1.0,
                   decay_days: float = 4.0,
                   aftermath_servers: float = 400.0
                   ) -> tuple[np.ndarray, np.ndarray]:
    """The paper's Animoto scenario as a (times, servers-needed) trace.

    Defaults follow the quote: 50 → 3500 servers over three days, then
    traffic falls "well below the peak" (but settles above the original
    50, as the real incident did).
    """
    if peak_servers <= baseline_servers:
        raise ValueError("peak must exceed baseline")
    event = FlashCrowdEvent(
        start_s=2 * _DAY_S,
        rise_s=rise_days * _DAY_S,
        plateau_s=plateau_days * _DAY_S,
        decay_s=decay_days * _DAY_S,
        magnitude=peak_servers / baseline_servers,
        aftermath=aftermath_servers / baseline_servers)
    times = np.arange(0.0, duration_s, step_s)
    demand = np.array([baseline_servers * event.multiplier(t)
                       for t in times])
    return times, demand


def demand_trace(base: float, events: list[FlashCrowdEvent],
                 duration_s: float, step_s: float = 300.0
                 ) -> tuple[np.ndarray, np.ndarray]:
    """Compose a flat base demand with any number of surge events.

    Multipliers of overlapping events combine by taking the maximum —
    two simultaneous crowds do not multiply each other.
    """
    if base <= 0:
        raise ValueError("base demand must be positive")
    times = np.arange(0.0, duration_s, step_s)
    mult = np.ones_like(times)
    for event in events:
        mult = np.maximum(mult,
                          np.array([event.multiplier(t) for t in times]))
    return times, base * mult
