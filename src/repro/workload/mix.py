"""Resource-usage profiles of workloads.

§5.2: "different processes stress physical resources differently —
some are CPU bound, some are disk IO bound, and some are network
bound — it is desirable to break cyber-modularity when assigning
processes to physical substrates."

A :class:`ResourceProfile` is a normalized demand vector over the four
resources the placement and interference models reason about.  The
power-correlation machinery supports the §5.2 claim that colocating
power-*uncorrelated* workloads reduces capping probability.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

__all__ = ["ResourceProfile", "CPU_BOUND", "DISK_BOUND", "NETWORK_BOUND",
           "BALANCED", "peak_correlation"]

_RESOURCES = ("cpu", "disk", "network", "memory")


@dataclasses.dataclass(frozen=True)
class ResourceProfile:
    """Normalized demand on each resource at the workload's own peak.

    Components are fractions of one server's capacity in [0, 1].
    ``phase_hour`` locates the workload's daily demand peak — two
    workloads whose phases differ by ~12 h have anti-correlated power
    draws and pack well together under an oversubscribed budget.
    """

    cpu: float
    disk: float
    network: float
    memory: float
    phase_hour: float = 14.0

    def __post_init__(self):
        for name in _RESOURCES:
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name}={value} outside [0, 1]")
        if not 0.0 <= self.phase_hour < 24.0:
            raise ValueError(f"phase_hour={self.phase_hour} outside [0, 24)")

    def as_vector(self) -> np.ndarray:
        """The (cpu, disk, network, memory) demand vector."""
        return np.array([self.cpu, self.disk, self.network, self.memory])

    @property
    def dominant(self) -> str:
        """Name of the most-stressed resource."""
        vector = self.as_vector()
        return _RESOURCES[int(vector.argmax())]

    def add(self, other: "ResourceProfile") -> np.ndarray:
        """Naive (additive) combined demand vector — the fiction that
        interference models correct."""
        return self.as_vector() + other.as_vector()

    def utilization_at(self, t_s: float, trough_fraction: float = 0.4) -> float:
        """Diurnal utilization of the dominant resource at time ``t_s``.

        A simple sinusoid peaking at ``phase_hour``; ``trough_fraction``
        is the off-peak level relative to peak.
        """
        if not 0.0 <= trough_fraction <= 1.0:
            raise ValueError("trough fraction must be in [0, 1]")
        hour = (t_s % 86_400.0) / 3600.0
        mid = (1.0 + trough_fraction) / 2.0
        amp = (1.0 - trough_fraction) / 2.0
        shape = mid + amp * math.cos(2 * math.pi * (hour - self.phase_hour) / 24.0)
        return float(getattr(self, self.dominant) * shape)


#: A compute-heavy service (e.g. encoding, indexing).
CPU_BOUND = ResourceProfile(cpu=0.9, disk=0.1, network=0.2, memory=0.4)

#: A storage-heavy service (e.g. mail store, file serving).
DISK_BOUND = ResourceProfile(cpu=0.2, disk=0.9, network=0.3, memory=0.3)

#: A traffic-heavy service (e.g. chat relay, CDN edge).
NETWORK_BOUND = ResourceProfile(cpu=0.25, disk=0.1, network=0.9, memory=0.2)

#: A middle-of-the-road web tier.
BALANCED = ResourceProfile(cpu=0.5, disk=0.4, network=0.4, memory=0.5)


def peak_correlation(a: ResourceProfile, b: ResourceProfile,
                     samples: int = 96) -> float:
    """Pearson correlation of two workloads' diurnal utilization.

    +1 for identical phases, −1 for opposite phases.  The §5.2
    placement policy minimizes this across colocated pairs.
    """
    times = np.linspace(0.0, 86_400.0, samples, endpoint=False)
    ua = np.array([a.utilization_at(t) for t in times])
    ub = np.array([b.utilization_at(t) for t in times])
    if ua.std() == 0 or ub.std() == 0:
        return 0.0
    return float(np.corrcoef(ua, ub)[0, 1])
