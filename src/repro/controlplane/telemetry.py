"""Lossy telemetry: the sensor network between plant and manager.

The paper's macro layer "learns about its operating environment
through a combination of networked sensors" (§4.5, Project Genome) —
and real sensor networks drop packets, smear readings with noise, lag
behind the plant, and partition along the very racks they instrument.
Until now the :class:`~repro.core.manager.MacroResourceManager` read
ground truth directly; this module inserts the network.

Two pieces:

* :class:`TelemetryBus` mediates every *published* sensor sample with
  configurable dropout, multiplicative Gaussian noise, staleness
  (readings reflect the plant as of ``staleness_s`` ago), and
  partition-by-rack (all channels tagged with a partitioned rack go
  dark until the partition heals).
* :class:`StateEstimator` is the manager-side store: it carries the
  last-known-good value per channel with its measurement timestamp,
  so consumers always get *a* value — just possibly an old one — plus
  the age needed to decide whether to trust it.

A *perfect* profile (all knobs zero) short-circuits both: samples
pass through untouched, no RNG is drawn, and reads return the live
value with age zero — which is what keeps the headline experiment
tables byte-identical when the bus is wired in but not stressed.
"""

from __future__ import annotations

import collections
import dataclasses
import math
import typing

from repro.sim import Environment, RandomStreams

__all__ = ["TelemetryProfile", "Reading", "StateEstimator",
           "TelemetryBus"]


@dataclasses.dataclass(frozen=True)
class TelemetryProfile:
    """Impairment knobs for one telemetry network.

    Parameters
    ----------
    dropout_probability:
        Chance an individual published sample never arrives.
    noise_fraction:
        Relative sigma of multiplicative Gaussian noise applied to
        numeric samples that do arrive (states and other non-float
        payloads pass through unperturbed).
    staleness_s:
        Transport delay: a read returns the newest sample at least
        this old, modelling store-and-forward aggregation tiers.
    """

    dropout_probability: float = 0.0
    noise_fraction: float = 0.0
    staleness_s: float = 0.0

    def __post_init__(self):
        if not 0.0 <= self.dropout_probability < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        if self.noise_fraction < 0.0:
            raise ValueError("noise fraction cannot be negative")
        if self.staleness_s < 0.0:
            raise ValueError("staleness cannot be negative")

    @property
    def perfect(self) -> bool:
        """True when the network neither loses, distorts, nor delays."""
        return (self.dropout_probability == 0.0
                and self.noise_fraction == 0.0
                and self.staleness_s == 0.0)


@dataclasses.dataclass(frozen=True)
class Reading:
    """One believed value: what arrived, when it was measured."""

    channel: str
    value: typing.Any
    time_s: float
    age_s: float

    @property
    def missing(self) -> bool:
        """True when no sample for the channel ever arrived."""
        return isinstance(self.value, float) and math.isnan(self.value)

    def stale(self, max_age_s: float) -> bool:
        """Is the reading older than the caller's trust horizon?"""
        return self.age_s > max_age_s


class StateEstimator:
    """Last-known-good store with bounded per-channel history.

    Keeps enough history per channel to answer delayed reads (the
    staleness model) and ages everything against the simulation
    clock.  History older than ``history_s`` before the newest sample
    is pruned, so memory stays O(channels × window), not O(run).
    """

    def __init__(self, env: Environment, history_s: float = 600.0):
        if history_s < 0:
            raise ValueError("history window cannot be negative")
        self.env = env
        self.history_s = float(history_s)
        self._hist: dict[str, collections.deque] = {}

    def channels(self) -> list[str]:
        """Every channel that has ever received a sample."""
        return list(self._hist)

    def observe(self, channel: str, value: typing.Any,
                time_s: float | None = None) -> None:
        """Store one delivered sample for ``channel``."""
        t = self.env.now if time_s is None else float(time_s)
        hist = self._hist.get(channel)
        if hist is None:
            hist = self._hist[channel] = collections.deque()
        if hist and t < hist[-1][0]:
            raise ValueError(f"sample at t={t} precedes newest for "
                             f"{channel!r}")
        hist.append((t, value))
        cutoff = t - self.history_s
        while len(hist) > 1 and hist[1][0] <= cutoff:
            hist.popleft()

    def read(self, channel: str, delay_s: float = 0.0) -> Reading:
        """Believed value: newest sample at least ``delay_s`` old.

        Falls back to the oldest retained sample when everything is
        newer than the delay horizon (the store-and-forward tier has
        not flushed yet), and to a missing (NaN) reading when the
        channel has never been heard from.
        """
        now = self.env.now
        hist = self._hist.get(channel)
        if not hist:
            return Reading(channel, math.nan, -math.inf, math.inf)
        cutoff = now - delay_s
        for t, value in reversed(hist):
            if t <= cutoff:
                return Reading(channel, value, t, now - t)
        t, value = hist[0]
        return Reading(channel, value, t, now - t)

    def age_s(self, channel: str) -> float:
        """Age of the newest sample (inf when never heard from)."""
        hist = self._hist.get(channel)
        if not hist:
            return math.inf
        return self.env.now - hist[-1][0]


class TelemetryBus:
    """The lossy pipe every sensor sample crosses.

    Producers call :meth:`sense` with ground truth; consumers call
    :meth:`read` and get the believed value.  The bus owns a
    :class:`StateEstimator` so last-known-good semantics come for
    free, and draws all randomness from the ``controlplane.telemetry``
    substream of the run's :class:`~repro.sim.RandomStreams` so chaos
    campaigns are exactly reproducible per seed.
    """

    def __init__(self, env: Environment,
                 profile: TelemetryProfile | None = None,
                 streams: RandomStreams | None = None):
        self.env = env
        self.profile = profile or TelemetryProfile()
        self.perfect = self.profile.perfect
        self._rng = None
        if not self.perfect:
            streams = streams or RandomStreams(0)
            self._rng = streams.get("controlplane.telemetry")
        self.estimator = StateEstimator(
            env, history_s=self.profile.staleness_s + 600.0)
        #: Racks whose sensor uplink is currently partitioned.
        self.partitioned_racks: set[str] = set()
        self.samples_published = 0
        self.samples_dropped = 0
        self.partition_drops = 0

    # ------------------------------------------------------------------
    # Partition-by-rack mode
    # ------------------------------------------------------------------
    def partition(self, racks: typing.Iterable[str]) -> None:
        """Cut the sensor uplink of the given racks."""
        self.partitioned_racks.update(racks)

    def heal(self, racks: typing.Iterable[str] | None = None) -> None:
        """Restore partitioned racks (all of them by default)."""
        if racks is None:
            self.partitioned_racks.clear()
        else:
            self.partitioned_racks.difference_update(racks)

    # ------------------------------------------------------------------
    # Publish / read
    # ------------------------------------------------------------------
    def sense(self, channel: str, value: typing.Any,
              rack: str | None = None) -> bool:
        """Publish one ground-truth sample; returns True if delivered."""
        self.samples_published += 1
        if self.perfect:
            self.estimator.observe(channel, value)
            return True
        if rack is not None and rack in self.partitioned_racks:
            self.partition_drops += 1
            self.samples_dropped += 1
            return False
        profile = self.profile
        if (profile.dropout_probability > 0.0
                and self._rng.random() < profile.dropout_probability):
            self.samples_dropped += 1
            return False
        if profile.noise_fraction > 0.0 and isinstance(value, float):
            value *= 1.0 + profile.noise_fraction \
                * self._rng.standard_normal()
        self.estimator.observe(channel, value)
        return True

    def sense_block(self, items: typing.Sequence[tuple]) -> int:
        """Publish many ``(channel, value, rack)`` samples in one sweep.

        Semantically identical to calling :meth:`sense` per item, in
        order — including the RNG stream: a length-k ``random()``
        block produces the same draws as k singles, so dropout-only
        profiles vectorize the per-sample coin flips.  Noisy profiles
        interleave value-dependent ``standard_normal`` draws and fall
        back to the exact scalar loop.  Returns the delivered count.
        """
        if self.perfect:
            self.samples_published += len(items)
            observe = self.estimator.observe
            for channel, value, _rack in items:
                observe(channel, value)
            return len(items)
        if self.profile.noise_fraction > 0.0:
            return sum(self.sense(channel, value, rack=rack)
                       for channel, value, rack in items)
        self.samples_published += len(items)
        partitioned = self.partitioned_racks
        if partitioned:
            live = []
            for channel, value, rack in items:
                if rack is not None and rack in partitioned:
                    self.partition_drops += 1
                    self.samples_dropped += 1
                else:
                    live.append((channel, value))
        else:
            live = [(channel, value) for channel, value, _rack in items]
        observe = self.estimator.observe
        p = self.profile.dropout_probability
        if p > 0.0 and live:
            delivered = 0
            draws = self._rng.random(len(live)).tolist()
            for (channel, value), u in zip(live, draws):
                if u < p:
                    self.samples_dropped += 1
                else:
                    observe(channel, value)
                    delivered += 1
            return delivered
        for channel, value in live:
            observe(channel, value)
        return len(live)

    def read(self, channel: str) -> Reading:
        """Believed value of ``channel`` (delayed by the staleness)."""
        if self.perfect:
            return self.estimator.read(channel)
        return self.estimator.read(channel, self.profile.staleness_s)

    def observe(self, channel: str, value: typing.Any,
                rack: str | None = None) -> typing.Any:
        """Publish + read in one step; returns the believed value.

        Perfect mode passes ``value`` through bit-for-bit; impaired
        modes return whatever the estimator believes after this
        sample crossed (or failed to cross) the network, falling back
        to ``value`` itself only when nothing has ever arrived.
        """
        if self.perfect:
            self.estimator.observe(channel, value)
            return value
        self.sense(channel, value, rack=rack)
        reading = self.read(channel)
        if reading.missing:
            return value
        return reading.value
