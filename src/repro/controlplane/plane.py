"""The control-plane facade: one handle over both buses + watchdog.

:class:`ControlPlane` is what the rest of the repo talks to.  It owns
the :class:`~repro.controlplane.telemetry.TelemetryBus` (sensing), the
:class:`~repro.controlplane.actuation.ActuationBus` (commanding), and
the :class:`~repro.controlplane.watchdog.Watchdog` (liveness), and
exposes exactly the verbs the macro layer needs: observe demand / zone
temperature / facility status, activate or deactivate one machine,
set a P-state, apply a cap, drain a server.

The contract that keeps every pre-existing experiment table
byte-identical: a **perfect** profile (the default) makes every method
a synchronous passthrough to the same calls the managers used to make
directly — zero RNG draws, zero scheduled events, bit-identical return
values.  Only an explicitly impaired profile switches the managers
onto *believed* state and asynchronous delivery.

The **reconciliation loop** is the hardening centerpiece: on a fixed
cadence it folds the newest telemetry state probes into the actuation
ledger, diffs the controller's *intent* against acked truth, re-issues
any divergent command, and asks the farm's
:class:`~repro.cluster.aggregates.FleetAggregate` to
:meth:`~repro.cluster.aggregates.FleetAggregate.verify` its cached
sums — the self-heal that bounds how long a lost command or a drifted
aggregate can mislead the manager.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.cluster.server import Server, ServerState
from repro.sim import Environment, RandomStreams

from .actuation import (
    ActuationBus,
    ActuationProfile,
    CommandKind,
    settled_state,
)
from .telemetry import TelemetryBus, TelemetryProfile
from .watchdog import Watchdog, WatchdogProfile

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.control.farm import ServerFarm
    from repro.cooling.room import MachineRoom
    from repro.core.faults import FacilityStatus

__all__ = ["ControlPlaneProfile", "ControlPlane", "ControlPlaneReport"]


@dataclasses.dataclass(frozen=True)
class ControlPlaneProfile:
    """Complete impairment + hardening configuration.

    The default constructs a *perfect* plane.  ``optimistic`` selects
    the naive believed-state rule (intent is truth, no acks needed) —
    pair it with ``max_retries=0`` and a trigger-happy watchdog to get
    the EXP-CONTROLPLANE strawman.
    """

    telemetry: TelemetryProfile = dataclasses.field(
        default_factory=TelemetryProfile)
    actuation: ActuationProfile = dataclasses.field(
        default_factory=ActuationProfile)
    watchdog: WatchdogProfile = dataclasses.field(
        default_factory=WatchdogProfile)
    #: Reconciliation cadence; 0 disables the loop.
    reconcile_period_s: float = 300.0
    #: Naive believed state: trust intent forever, never reconcile.
    optimistic: bool = False

    def __post_init__(self):
        if self.reconcile_period_s < 0:
            raise ValueError("reconcile period cannot be negative")

    @property
    def perfect(self) -> bool:
        return (self.telemetry.perfect and self.actuation.perfect
                and not self.optimistic)

    @classmethod
    def naive(cls, command_loss: float = 0.05,
              staleness_s: float = 60.0,
              watchdog_false_miss: float = 0.01) -> "ControlPlaneProfile":
        """Fire-and-forget manager on an impaired network."""
        return cls(
            telemetry=TelemetryProfile(dropout_probability=0.02,
                                       noise_fraction=0.01,
                                       staleness_s=staleness_s),
            actuation=ActuationProfile(loss_probability=command_loss,
                                       transient_failure_probability=0.01,
                                       latency_s=2.0,
                                       max_retries=0),
            watchdog=WatchdogProfile(
                miss_threshold=1,
                false_miss_probability=watchdog_false_miss),
            reconcile_period_s=0.0,
            optimistic=True,
        )

    @classmethod
    def hardened(cls, command_loss: float = 0.05,
                 staleness_s: float = 60.0,
                 watchdog_false_miss: float = 0.01
                 ) -> "ControlPlaneProfile":
        """Same impaired network, full retry + reconcile defences."""
        return cls(
            telemetry=TelemetryProfile(dropout_probability=0.02,
                                       noise_fraction=0.01,
                                       staleness_s=staleness_s),
            actuation=ActuationProfile(loss_probability=command_loss,
                                       transient_failure_probability=0.01,
                                       latency_s=2.0,
                                       ack_timeout_s=30.0,
                                       max_retries=3,
                                       backoff_base_s=5.0),
            watchdog=WatchdogProfile(
                miss_threshold=3,
                false_miss_probability=watchdog_false_miss),
            reconcile_period_s=300.0,
            optimistic=False,
        )


@dataclasses.dataclass(frozen=True)
class ControlPlaneReport:
    """End-of-run accounting across both buses and the watchdog."""

    commands_issued: int
    commands_acked: int
    commands_gave_up: int
    retries_total: int
    max_attempts: int
    reconciler_reissues: int
    #: Servers whose believed state disagrees with ground truth *now*.
    divergent_servers: int
    telemetry_published: int
    telemetry_dropped: int
    watchdog_checks: int
    watchdog_suspicions: int
    watchdog_false_positives: int
    aggregate_power_drift_w: float

    def rows(self) -> list[tuple[str, str]]:
        return [
            ("commands", f"issued={self.commands_issued} "
                         f"acked={self.commands_acked} "
                         f"gave_up={self.commands_gave_up}"),
            ("retries", f"total={self.retries_total} "
                        f"max_attempts={self.max_attempts} "
                        f"reissued={self.reconciler_reissues}"),
            ("divergence", f"{self.divergent_servers} servers"),
            ("telemetry", f"published={self.telemetry_published} "
                          f"dropped={self.telemetry_dropped}"),
            ("watchdog", f"checks={self.watchdog_checks} "
                         f"suspected={self.watchdog_suspicions} "
                         f"false_pos={self.watchdog_false_positives}"),
        ]


def _rack_of(server: Server) -> str | None:
    """Rack label from the spec's ``<dc>-r<K>-s<N>`` naming."""
    name = server.name
    head, sep, _ = name.rpartition("-s")
    return head if sep else None


class ControlPlane:
    """Buses + watchdog + reconciler behind one facade."""

    def __init__(self, env: Environment,
                 servers: typing.Sequence[Server],
                 profile: ControlPlaneProfile | None = None,
                 streams: RandomStreams | None = None):
        self.env = env
        self.profile = profile or ControlPlaneProfile()
        self.perfect = self.profile.perfect
        self.servers = list(servers)
        if not self.perfect:
            streams = streams or RandomStreams(0)
        self.telemetry = TelemetryBus(env, self.profile.telemetry, streams)
        self.actuation = ActuationBus(env, self.servers,
                                      self.profile.actuation, streams,
                                      optimistic=self.profile.optimistic)
        self.watchdog: Watchdog | None = None
        if not self.perfect:
            self.watchdog = Watchdog(env, self.telemetry,
                                     self.profile.watchdog, streams)
            self.watchdog.monitor(s.name for s in self.servers)
            self.watchdog.expected_down = self._expected_down
        self._by_name = {s.name: s for s in self.servers}
        #: Name of the server the last activate/deactivate picked —
        #: read by the flight-recorder hooks, which otherwise only see
        #: the boolean "one was started" result.
        self.last_actuated: str | None = None
        self._rack = {s.name: _rack_of(s) for s in self.servers}
        self.farm: "ServerFarm | None" = None
        self.room: "MachineRoom | None" = None
        self.reconcile_runs = 0
        self.divergences_repaired = 0
        self.aggregate_power_drift_w = 0.0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, farm: "ServerFarm | None" = None,
               room: "MachineRoom | None" = None) -> None:
        """Hook the plane into the plant it mediates."""
        if farm is not None:
            self.farm = farm
            farm.control_plane = self
        if room is not None:
            self.room = room

    def processes(self) -> list:
        """Generators the host simulation should spawn (chaos only)."""
        procs = []
        if self.watchdog is not None:
            procs.append(self.watchdog.run())
        if not self.perfect and self.profile.reconcile_period_s > 0:
            procs.append(self.reconcile_loop())
        return procs

    # ------------------------------------------------------------------
    # Sensing (manager side)
    # ------------------------------------------------------------------
    def publish_tick(self, farm: "ServerFarm") -> None:
        """Plant-side sensor sweep, called from the farm tick.

        No-op on a perfect plane: the manager reads ground truth
        directly, so there is nothing to transport.
        """
        if self.perfect:
            return
        now = self.env.now
        sense = self.telemetry.sense
        sense("farm.demand", farm.demand_fn(now))
        sense("farm.power_w", farm.fleet.power_w)
        # One bulk publish for the whole sweep: heartbeats are plain
        # ``sense`` calls on ``hb.<name>`` channels (Watchdog.beat), so
        # interleaving them in the item list reproduces the per-server
        # loop exactly while letting the bus vectorize the coin flips.
        watchdog = self.watchdog
        rack_of = self._rack
        items = []
        for server in farm.servers:
            rack = rack_of[server.name]
            items.append((f"state.{server.name}", server.state, rack))
            if (watchdog is not None
                    and server.state is ServerState.ACTIVE):
                items.append((watchdog.channel(server.name), now, rack))
        self.telemetry.sense_block(items)

    def publish_physical(self, status: "FacilityStatus | None" = None
                         ) -> None:
        """Publish zone temps + facility gauges (physical-loop side)."""
        if self.perfect:
            return
        if self.room is not None:
            for zone in self.room.zones:
                self.telemetry.sense(f"temp.{zone.name}", zone.temp_c)
        if status is not None:
            self.telemetry.sense("facility.capacity_w",
                                 float(status.power_capacity_w))

    def observe_demand(self, t_s: float) -> float:
        """Demand signal as the manager can actually see it."""
        demand = self.farm.demand_fn(t_s)
        if self.perfect:
            return demand
        reading = self.telemetry.read("farm.demand")
        return demand if reading.missing else reading.value

    def zone_temp(self, zone) -> float:
        """Believed temperature of one thermal zone."""
        if self.perfect:
            return zone.temp_c
        reading = self.telemetry.read(f"temp.{zone.name}")
        return zone.temp_c if reading.missing else reading.value

    def observe_status(self, status: "FacilityStatus | None"):
        """Facility status with gauges replaced by believed values."""
        if status is None or self.perfect:
            return status
        reading = self.telemetry.read("facility.capacity_w")
        if reading.missing:
            return status
        return status._replace(power_capacity_w=reading.value)

    def suspect_count(self) -> int:
        """Servers the watchdog currently suspects dead."""
        if self.watchdog is None:
            return 0
        return len(self.watchdog.suspected)

    def _expected_down(self, name: str) -> bool:
        """Watchdog hook: silence from a non-ACTIVE machine is normal."""
        server = self._by_name[name]
        return self.believed_state(server) is not ServerState.ACTIVE

    # ------------------------------------------------------------------
    # Believed state & actuation (controller side)
    # ------------------------------------------------------------------
    def believed_state(self, server: Server) -> ServerState:
        return self.actuation.believed_state(server)

    def believed_active(self, farm: "ServerFarm") -> list[Server]:
        """Pool-order roster of servers believed ACTIVE."""
        believed = self.actuation.believed_state
        return [s for s in farm.servers
                if believed(s) is ServerState.ACTIVE]

    def activate_one(self, quarantined: typing.Container[str],
                     origin: str = "controller") -> bool:
        """Wake (preferred) or boot one machine through the bus."""
        farm = self.farm
        # Perfect plane selects on ground truth (the exact legacy
        # scan); an impaired one can only act on believed state.
        state_of = ((lambda s: s.state) if self.perfect
                    else self.believed_state)
        for server in farm.servers:
            if (state_of(server) is ServerState.SLEEPING
                    and server.zone not in quarantined):
                self.actuation.submit(server, CommandKind.WAKE,
                                      origin=origin)
                self.last_actuated = server.name
                return True
        for server in farm.servers:
            if (state_of(server) is ServerState.OFF
                    and server.zone not in quarantined):
                self.actuation.submit(server, CommandKind.POWER_ON,
                                      origin=origin)
                self.last_actuated = server.name
                return True
        return False

    def deactivate_one(self, to_sleep: bool) -> bool:
        """Drain + sleep/shut one believed-ACTIVE machine via the bus."""
        farm = self.farm
        if self.perfect:
            active = farm.fleet.active_servers()
        else:
            active = self.believed_active(farm)
        if len(active) <= 1:
            return False  # never scale to zero
        victim = active[-1]
        kind = CommandKind.SLEEP if to_sleep else CommandKind.SHUT_DOWN
        self.actuation.submit(victim, kind)
        self.last_actuated = victim.name
        return True

    def set_pstate(self, server: Server, index: int) -> None:
        """Command a P-state; deduped against believed state in chaos."""
        if self.perfect:
            self.actuation.submit(server, CommandKind.SET_PSTATE, index)
            return
        believed = self.actuation.believed_pstate.get(server.name)
        if believed == index:
            return
        self.actuation.submit(server, CommandKind.SET_PSTATE, index)

    def shut_down(self, server: Server,
                  origin: str = "controller") -> None:
        """Orderly drain + power-off (the macro layer's zone drain)."""
        self.actuation.submit(server, CommandKind.SHUT_DOWN,
                              origin=origin)

    def cap_actuator(self, load, watts: float | None):
        """PowerCapper actuator: route cap commands through the bus.

        ``watts=None`` lifts the cap.  Perfect mode returns exactly
        what the direct ``apply_cap`` call would have (the capper's
        delivered-power accounting stays bit-identical); chaos mode
        returns the load's current draw — the honest reading while the
        command is still in flight — and dedupes no-op removals so the
        bus is not flooded with redundant lifts.
        """
        if self.perfect:
            if watts is None:
                return load.remove_cap()
            return load.apply_cap(watts)
        believed = self.actuation.believed_cap.get(load.name)
        if watts is None:
            if believed is not None:
                self.actuation.submit(load, CommandKind.REMOVE_CAP)
            return load.power_w()
        if believed != watts:
            self.actuation.submit(load, CommandKind.APPLY_CAP, watts)
        return load.power_w()

    # ------------------------------------------------------------------
    # Reconciliation
    # ------------------------------------------------------------------
    _KIND_FOR_INTENT = {
        ServerState.ACTIVE: CommandKind.WAKE,
        ServerState.SLEEPING: CommandKind.SLEEP,
        ServerState.OFF: CommandKind.SHUT_DOWN,
    }

    def reconcile(self) -> int:
        """One pass: fold probes, diff intent vs truth, re-issue.

        Returns the number of divergent commands re-issued.  Also asks
        the farm aggregate to verify its cached sums — the cheap
        self-heal that bounds aggregate drift.  Traced runs log one
        ``controlplane.reconcile`` event per pass under a
        ``reconcile`` wall timer.
        """
        tracer = self.env.tracer
        if tracer is None:
            return self._reconcile()
        with tracer.timer("reconcile"):
            reissued = self._reconcile()
        tracer.event("controlplane.reconcile", "control",
                     reissued=reissued, runs=self.reconcile_runs,
                     drift_w=self.aggregate_power_drift_w)
        return reissued

    def _reconcile(self) -> int:
        self.reconcile_runs += 1
        bus = self.actuation
        reissued = 0
        for name, intent in list(bus.intended.items()):
            key = bus._state_key(name)
            if key in bus._open:
                continue  # still in flight; let the retries play out
            reading = self.telemetry.read(f"state.{name}")
            if not reading.missing:
                bus.accept_probe(name, reading.value, reading.time_s)
            server = self._by_name[name]
            if bus.believed_state(server) is not intent:
                kind = self._KIND_FOR_INTENT[intent]
                bus.submit(server, kind, origin="reconciler")
                reissued += 1
        self.divergences_repaired += reissued
        if self.farm is not None:
            repair = self.farm.fleet.verify()
            self.aggregate_power_drift_w = max(
                self.aggregate_power_drift_w, repair["power_drift_w"])
        return reissued

    def reconcile_loop(self):
        """Simulation process: reconcile on the configured cadence."""
        period = self.profile.reconcile_period_s
        while True:
            yield self.env.timeout(period)
            self.reconcile()

    # ------------------------------------------------------------------
    # Audit
    # ------------------------------------------------------------------
    def divergence(self) -> int:
        """Servers whose believed state disagrees with ground truth."""
        return sum(
            1 for s in self.servers
            if self.believed_state(s) is not settled_state(s.state))

    def report(self) -> ControlPlaneReport:
        bus = self.actuation
        wd = self.watchdog
        return ControlPlaneReport(
            commands_issued=len(bus.records),
            commands_acked=sum(r.acked for r in bus.records),
            commands_gave_up=len(bus.gave_up_commands()),
            retries_total=sum(r.retries for r in bus.records),
            max_attempts=bus.max_attempts(),
            reconciler_reissues=bus.reissues,
            divergent_servers=self.divergence(),
            telemetry_published=self.telemetry.samples_published,
            telemetry_dropped=self.telemetry.samples_dropped,
            watchdog_checks=wd.checks if wd else 0,
            watchdog_suspicions=wd.suspicions if wd else 0,
            watchdog_false_positives=wd.false_positives if wd else 0,
            aggregate_power_drift_w=self.aggregate_power_drift_w,
        )
