"""``repro.controlplane``: the unreliable network between manager and plant.

The macro layer is a *distributed* cyber-physical controller: every
sensor reading crosses a lossy telemetry network and every command
crosses a fallible actuation network.  This package models both —
plus the watchdog and reconciliation machinery that make a manager
operable on top of them:

* :mod:`~repro.controlplane.telemetry` — TelemetryBus (dropout, noise,
  staleness, rack partitions) + StateEstimator (last-known-good with
  age tracking).
* :mod:`~repro.controlplane.actuation` — ActuationBus (latency, loss,
  transient failures; idempotency keys, retry with exponential
  backoff, per-command timeouts, believed-state ledger).
* :mod:`~repro.controlplane.watchdog` — missed-heartbeat liveness with
  a configurable false-positive rate.
* :mod:`~repro.controlplane.plane` — the ControlPlane facade the
  managers talk to, including the periodic reconciliation loop.

A perfect profile (the default) is a synchronous passthrough that
keeps every legacy experiment bit-identical; only explicitly impaired
profiles put the managers on believed state.
"""

from repro.controlplane.actuation import (
    ActuationBus,
    ActuationProfile,
    CommandKind,
    CommandRecord,
    apply_command,
    settled_state,
)
from repro.controlplane.plane import (
    ControlPlane,
    ControlPlaneProfile,
    ControlPlaneReport,
)
from repro.controlplane.telemetry import (
    Reading,
    StateEstimator,
    TelemetryBus,
    TelemetryProfile,
)
from repro.controlplane.watchdog import Watchdog, WatchdogProfile

__all__ = [
    "ActuationBus",
    "ActuationProfile",
    "CommandKind",
    "CommandRecord",
    "ControlPlane",
    "ControlPlaneProfile",
    "ControlPlaneReport",
    "Reading",
    "StateEstimator",
    "TelemetryBus",
    "TelemetryProfile",
    "Watchdog",
    "WatchdogProfile",
    "apply_command",
    "settled_state",
]
