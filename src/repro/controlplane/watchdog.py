"""Watchdog health-checker: missed-heartbeat server liveness.

Every farm tick, live servers emit heartbeats that cross the (lossy)
:class:`~repro.controlplane.telemetry.TelemetryBus`.  The watchdog
checks each server's newest heartbeat age on a fixed cadence and
counts consecutive misses; at ``miss_threshold`` misses the server is
*suspected* and the suspicion feeds the degraded-ops machinery of the
:class:`~repro.core.manager.MacroResourceManager` as one more threat
signal.

The interesting failure mode is the *false positive*: a healthy
server whose heartbeats all dropped, or a checker that glitched.  The
``false_miss_probability`` knob models the latter directly, and the
``miss_threshold`` is the defence — a naive threshold of one flaps
into degraded mode on every glitch, while a debounced threshold of
three only fires on sustained silence.
"""

from __future__ import annotations

import dataclasses

from repro.sim import Environment, RandomStreams

from .telemetry import TelemetryBus

__all__ = ["WatchdogProfile", "Watchdog"]


@dataclasses.dataclass(frozen=True)
class WatchdogProfile:
    """Liveness-checking knobs.

    Parameters
    ----------
    check_period_s:
        Cadence of the liveness sweep.
    miss_threshold:
        Consecutive missed checks before a server is suspected.
    false_miss_probability:
        Chance a check against a *live* heartbeat is nevertheless
        scored as a miss (checker glitch / probe drop).
    heartbeat_timeout_s:
        A heartbeat older than this counts as a genuine miss.
    """

    check_period_s: float = 60.0
    miss_threshold: int = 3
    false_miss_probability: float = 0.0
    heartbeat_timeout_s: float = 90.0

    def __post_init__(self):
        if self.check_period_s <= 0:
            raise ValueError("check period must be positive")
        if self.miss_threshold < 1:
            raise ValueError("miss threshold must be at least 1")
        if not 0.0 <= self.false_miss_probability < 1.0:
            raise ValueError("false-miss probability must be in [0, 1)")
        if self.heartbeat_timeout_s <= 0:
            raise ValueError("heartbeat timeout must be positive")


class Watchdog:
    """Counts missed heartbeats; suspects servers; tracks its errors.

    Heartbeats arrive through the telemetry bus on channels named
    ``hb.<server>``; :meth:`check` sweeps every monitored server and
    updates the suspect set.  ``false_positives`` counts suspicion
    events raised while the newest heartbeat was actually fresh — the
    metric EXP-CONTROLPLANE reports.
    """

    def __init__(self, env: Environment, telemetry: TelemetryBus,
                 profile: WatchdogProfile | None = None,
                 streams: RandomStreams | None = None):
        self.env = env
        self.telemetry = telemetry
        self.profile = profile or WatchdogProfile()
        self._rng = None
        if self.profile.false_miss_probability > 0.0:
            streams = streams or RandomStreams(0)
            self._rng = streams.get("controlplane.watchdog")
        self._names: list[str] = []
        self._misses: dict[str, int] = {}
        self.suspected: set[str] = set()
        self.checks = 0
        self.suspicions = 0
        self.false_positives = 0
        self.clears = 0

    def monitor(self, names) -> None:
        """Add servers to the liveness sweep."""
        for name in names:
            if name not in self._misses:
                self._names.append(name)
                self._misses[name] = 0

    @staticmethod
    def channel(name: str) -> str:
        return f"hb.{name}"

    def beat(self, name: str, rack: str | None = None) -> None:
        """Publish one heartbeat for ``name`` through the telemetry."""
        self.telemetry.sense(self.channel(name), self.env.now, rack=rack)

    def expected_down(self, name: str) -> bool:  # pragma: no cover
        """Hook: overridden by the plane to exempt asleep servers."""
        return False

    def check(self) -> set[str]:
        """One liveness sweep; returns the current suspect set."""
        self.checks += 1
        profile = self.profile
        for name in self._names:
            if self.expected_down(name):
                # Commanded asleep/off: silence is expected, not a miss.
                self._misses[name] = 0
                if name in self.suspected:
                    self.suspected.discard(name)
                    self.clears += 1
                continue
            age = self.telemetry.estimator.age_s(self.channel(name))
            fresh = age <= profile.heartbeat_timeout_s
            glitched = (fresh and self._rng is not None
                        and self._rng.random()
                        < profile.false_miss_probability)
            if fresh and not glitched:
                self._misses[name] = 0
                if name in self.suspected:
                    self.suspected.discard(name)
                    self.clears += 1
                continue
            self._misses[name] += 1
            if (self._misses[name] >= profile.miss_threshold
                    and name not in self.suspected):
                self.suspected.add(name)
                self.suspicions += 1
                if fresh:
                    self.false_positives += 1
        return self.suspected

    def run(self):
        """Simulation process: sweep forever on the check cadence."""
        while True:
            yield self.env.timeout(self.profile.check_period_s)
            self.check()
