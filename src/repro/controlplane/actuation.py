"""Fallible actuation: the command path between manager and plant.

Ground truth so far: every wake/sleep/P-state/drain/cap call landed
instantly and infallibly.  Real control planes issue commands over a
network to baseboard controllers that are sometimes busy, sometimes
unreachable, and sometimes execute but fail to acknowledge.  The
:class:`ActuationBus` models exactly that — per-command latency, loss,
and transient execution failures — and layers the standard defences on
top: idempotency keys, per-command acknowledgement timeouts, and
retry with exponential backoff.

Command application is *idempotent by construction*: each
:class:`CommandKind` is an "ensure" operation (ensure active, ensure
asleep, ensure this P-state, ...), so a duplicate delivery — from a
retry whose predecessor actually executed but whose ack was lost, or
from the reconciliation loop re-issuing a divergent command — is a
harmless no-op.  Every ack carries the server's *resulting* settled
state, which is how the bus's believed-state ledger converges back to
truth.

A *perfect* profile (zero loss, zero latency, zero transient failure)
executes commands synchronously inside :meth:`ActuationBus.submit`,
draws no RNG, and schedules no events — the byte-identity guarantee
for all pre-existing experiment tables.
"""

from __future__ import annotations

import dataclasses
import enum
import typing

from repro.cluster.server import Server, ServerState
from repro.sim import Environment, RandomStreams

__all__ = ["ActuationProfile", "CommandKind", "CommandRecord",
           "ActuationBus", "settled_state", "apply_command"]


class CommandKind(enum.Enum):
    """The actuation verbs the macro layer issues."""

    #: Ensure the server is (or is becoming) ACTIVE; wakes SLEEPING
    #: machines and boots OFF ones.
    WAKE = "wake"
    #: Alias of WAKE issued against OFF machines (kept distinct for
    #: the audit trail; semantics are identical "ensure active").
    POWER_ON = "power-on"
    #: Drain and suspend-to-RAM an ACTIVE server.
    SLEEP = "sleep"
    #: Drain and power off an ACTIVE or SLEEPING server.
    SHUT_DOWN = "shut-down"
    #: Command a DVFS P-state (value = index).
    SET_PSTATE = "set-pstate"
    #: Throttle until draw fits under value watts.
    APPLY_CAP = "apply-cap"
    #: Lift any throttle.
    REMOVE_CAP = "remove-cap"


#: Settled server state each state-changing kind aims for.
_TARGET_STATE: dict[CommandKind, ServerState] = {
    CommandKind.WAKE: ServerState.ACTIVE,
    CommandKind.POWER_ON: ServerState.ACTIVE,
    CommandKind.SLEEP: ServerState.SLEEPING,
    CommandKind.SHUT_DOWN: ServerState.OFF,
}

#: Transitional states mapped onto the state they settle into.
_SETTLES_TO: dict[ServerState, ServerState] = {
    ServerState.BOOTING: ServerState.ACTIVE,
    ServerState.WAKING: ServerState.ACTIVE,
}


def settled_state(state: ServerState) -> ServerState:
    """Map transitional states to where they end up on their own."""
    return _SETTLES_TO.get(state, state)


def apply_command(server: Server, kind: CommandKind,
                  value: float | int | None = None
                  ) -> tuple[str, ServerState]:
    """Idempotently apply one command; returns (outcome, settled state).

    Outcomes: ``"applied"`` (state changed / knob set), ``"noop"``
    (already satisfied — the idempotent duplicate-delivery case),
    ``"busy"`` (mid-transition, retry later), ``"unreachable"``
    (FAILED hardware cannot execute anything).
    """
    state = server.state
    if kind in (CommandKind.WAKE, CommandKind.POWER_ON):
        if state is ServerState.FAILED:
            return "unreachable", settled_state(state)
        if state is ServerState.SLEEPING:
            server.wake()
        elif state is ServerState.OFF:
            server.power_on()
        else:  # ACTIVE / BOOTING / WAKING: already on its way
            return "noop", settled_state(state)
        return "applied", ServerState.ACTIVE
    if kind is CommandKind.SLEEP:
        if state is ServerState.FAILED:
            return "unreachable", settled_state(state)
        if state in (ServerState.SLEEPING, ServerState.OFF):
            return "noop", settled_state(state)
        if state is not ServerState.ACTIVE:
            return "busy", settled_state(state)
        server.set_offered_load(0.0)
        server.sleep()
        return "applied", ServerState.SLEEPING
    if kind is CommandKind.SHUT_DOWN:
        if state is ServerState.FAILED:
            return "unreachable", settled_state(state)
        if state is ServerState.OFF:
            return "noop", settled_state(state)
        if state in (ServerState.BOOTING, ServerState.WAKING):
            return "busy", settled_state(state)
        if state is ServerState.ACTIVE:
            server.set_offered_load(0.0)
        server.shut_down()
        return "applied", ServerState.OFF
    if kind is CommandKind.SET_PSTATE:
        if state is ServerState.FAILED:
            return "unreachable", settled_state(state)
        outcome = "noop" if server.pstate == int(value) else "applied"
        server.set_pstate(int(value))
        return outcome, settled_state(state)
    if kind is CommandKind.APPLY_CAP:
        if state is ServerState.FAILED:
            return "unreachable", settled_state(state)
        server.apply_cap(float(value))
        return "applied", settled_state(state)
    if kind is CommandKind.REMOVE_CAP:
        if state is ServerState.FAILED:
            return "unreachable", settled_state(state)
        server.remove_cap()
        return "applied", settled_state(state)
    raise ValueError(f"unknown command kind {kind!r}")  # pragma: no cover


@dataclasses.dataclass(frozen=True)
class ActuationProfile:
    """Impairment + hardening knobs for the command path.

    Parameters
    ----------
    loss_probability:
        Chance one delivery attempt is lost round-trip (either the
        command never reached the server, or it executed and the ack
        vanished — idempotent application makes the two equivalent
        from the retry machinery's point of view).
    transient_failure_probability:
        Chance a delivered command fails to execute (busy BMC,
        firmware hiccup); the NACK comes back and triggers a retry.
    latency_s:
        One-way transport latency per attempt.
    ack_timeout_s:
        How long the bus waits for an ack before declaring the
        attempt lost.
    max_retries:
        Re-deliveries after the first attempt (0 = fire and forget).
    backoff_base_s:
        Exponential backoff: retry ``n`` waits ``base * 2**(n-1)``,
        capped at ``backoff_cap_s``.
    backoff_jitter:
        Decorrelated jitter (opt-in): each retry instead sleeps
        ``min(cap, uniform(base, 3 * previous_sleep))``, drawn from a
        dedicated RNG substream.  Deterministic exponential backoff
        marches every failed command on the same clock — after a bus
        brown-out, all of them retry in the same instant and re-create
        the very congestion that lost them.  Jitter spreads the
        retries out while keeping the same cap.
    """

    loss_probability: float = 0.0
    transient_failure_probability: float = 0.0
    latency_s: float = 0.0
    ack_timeout_s: float = 30.0
    max_retries: int = 3
    backoff_base_s: float = 5.0
    backoff_cap_s: float = 120.0
    backoff_jitter: bool = False

    def __post_init__(self):
        for p in (self.loss_probability,
                  self.transient_failure_probability):
            if not 0.0 <= p < 1.0:
                raise ValueError("probabilities must be in [0, 1)")
        if self.latency_s < 0 or self.backoff_base_s < 0:
            raise ValueError("timings cannot be negative")
        if self.ack_timeout_s <= 2 * self.latency_s and not self.perfect:
            raise ValueError("ack timeout must exceed the round trip")
        if self.max_retries < 0:
            raise ValueError("max retries cannot be negative")

    @property
    def perfect(self) -> bool:
        """True when every command lands instantly and infallibly."""
        return (self.loss_probability == 0.0
                and self.transient_failure_probability == 0.0
                and self.latency_s == 0.0)


@dataclasses.dataclass
class CommandRecord:
    """Audit entry for one issued command."""

    key: str
    server_name: str
    kind: CommandKind
    value: float | int | None
    issued_s: float
    #: Who issued it ("controller" or "reconciler").
    origin: str = "controller"
    attempts: int = 0
    lost_deliveries: int = 0
    transient_failures: int = 0
    #: Last backoff sleep taken (decorrelated jitter feeds on it).
    backoff_s: float = 0.0
    acked_s: float | None = None
    result: str | None = None
    gave_up: bool = False
    #: Flight-recorder correlation: the macro decision this command
    #: traces back to.  Reconciler reissues inherit the id of the
    #: originating controller command for the same idempotency key,
    #: so a retry chain stays linked to the decision that started it.
    decision_id: int | None = None

    @property
    def acked(self) -> bool:
        return self.acked_s is not None

    @property
    def open(self) -> bool:
        """Still in flight: not acked, not abandoned, not superseded."""
        return (self.acked_s is None and self.result is None
                and not self.gave_up)

    @property
    def retries(self) -> int:
        return max(0, self.attempts - 1)


class ActuationBus:
    """All actuation flows through here.

    Maintains two per-server ledgers:

    * ``intended`` — the settled state the controller last commanded
      (written at submit time: the controller *knows what it asked
      for* even before the ack arrives);
    * ``acked`` — the settled state implied by the newest
      acknowledgement (or reconciler probe; see
      :meth:`accept_probe`), timestamped so older probes can never
      overwrite newer truth.

    ``believed_state`` is what the manager plans against: the intent
    while a command is in flight (or always, for an ``optimistic``
    fire-and-forget bus — the naive manager of EXP-CONTROLPLANE),
    falling back to acked truth once the dust settles.
    """

    def __init__(self, env: Environment,
                 servers: typing.Sequence[Server],
                 profile: ActuationProfile | None = None,
                 streams: RandomStreams | None = None,
                 optimistic: bool = False):
        self.env = env
        self.profile = profile or ActuationProfile()
        self.perfect = self.profile.perfect
        self.optimistic = bool(optimistic)
        self._rng = None
        self._jitter_rng = None
        if not self.perfect:
            streams = streams or RandomStreams(0)
            self._rng = streams.get("controlplane.actuation")
            if self.profile.backoff_jitter:
                # A separate named substream: enabling jitter must not
                # shift the draws of the loss/failure stream (golden
                # tables depend on them byte for byte).
                self._jitter_rng = streams.get(
                    "controlplane.actuation.jitter")
        self._servers = {s.name: s for s in servers}
        self.records: list[CommandRecord] = []
        #: Open commands by idempotency key (in-flight dedupe).
        self._open: dict[str, CommandRecord] = {}
        self.intended: dict[str, ServerState] = {}
        self._acked: dict[str, tuple[ServerState, float]] = {
            s.name: (settled_state(s.state), env.now) for s in servers}
        #: Believed knob positions, for command dedup by callers.
        self.believed_pstate: dict[str, int] = {}
        self.believed_cap: dict[str, float | None] = {}
        self.reissues = 0
        #: Last macro decision id seen per idempotency key, so a
        #: reconciler reissue (made outside any decision) can be
        #: attributed to the decision whose command it repairs.
        self._last_decision: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Believed state
    # ------------------------------------------------------------------
    def believed_state(self, server: Server) -> ServerState:
        """The settled state the manager believes ``server`` is in."""
        if self.perfect:
            return settled_state(server.state)
        name = server.name
        intent = self.intended.get(name)
        if intent is not None:
            if self.optimistic:
                return intent
            record = self._open.get(self._state_key(name))
            if record is not None:
                return intent
        return self._acked[name][0]

    def accept_probe(self, name: str, state: ServerState,
                     measured_s: float) -> bool:
        """Fold a (possibly stale) state probe into the acked ledger.

        Rejected when older than the ledger's current entry — a
        delayed probe must never overwrite fresher ack truth.
        """
        current = self._acked.get(name)
        if current is not None and measured_s <= current[1]:
            return False
        self._acked[name] = (settled_state(state), measured_s)
        return True

    @staticmethod
    def _state_key(name: str) -> str:
        return f"{name}:state"

    @staticmethod
    def _key_for(name: str, kind: CommandKind,
                 value: float | int | None) -> str:
        if kind in _TARGET_STATE:
            # One open state-changing command per server at a time:
            # the newest intent supersedes, so WAKE then SLEEP on the
            # same machine do not race as independent keys.
            return ActuationBus._state_key(name)
        if kind is CommandKind.SET_PSTATE:
            return f"{name}:pstate"
        return f"{name}:cap"

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, server: Server, kind: CommandKind,
               value: float | int | None = None,
               origin: str = "controller"):
        """Issue one command; returns the apply result in perfect mode.

        Perfect mode applies synchronously and returns whatever the
        underlying server call returned (``apply_cap``'s post-cap
        draw, for instance) so callers keep exact legacy accounting.
        Impaired mode returns the :class:`CommandRecord` and lets the
        delivery process run; duplicate submissions against an open
        idempotency key return the existing record untouched.
        """
        if self.perfect:
            if kind in (CommandKind.WAKE, CommandKind.POWER_ON):
                if server.state is ServerState.SLEEPING:
                    return server.wake()
                return server.power_on()
            if kind is CommandKind.SLEEP:
                server.set_offered_load(0.0)
                return server.sleep()
            if kind is CommandKind.SHUT_DOWN:
                if server.state is ServerState.ACTIVE:
                    server.set_offered_load(0.0)
                return server.shut_down()
            if kind is CommandKind.SET_PSTATE:
                return server.set_pstate(int(value))
            if kind is CommandKind.APPLY_CAP:
                return server.apply_cap(float(value))
            if kind is CommandKind.REMOVE_CAP:
                return server.remove_cap()
            raise ValueError(f"unknown kind {kind!r}")  # pragma: no cover

        name = server.name
        key = self._key_for(name, kind, value)
        existing = self._open.get(key)
        if (existing is not None and existing.kind is kind
                and existing.value == value):
            return existing
        record = CommandRecord(key=key, server_name=name, kind=kind,
                               value=value, issued_s=self.env.now,
                               origin=origin)
        if origin == "reconciler":
            self.reissues += 1
        tracer = self.env.tracer
        if tracer is not None:
            if origin == "reconciler":
                record.decision_id = self._last_decision.get(key)
            else:
                record.decision_id = tracer.decision_id
            if record.decision_id is not None:
                self._last_decision[key] = record.decision_id
            tracer.event("bus.submit", "control", key=key,
                         kind=kind.value, origin=origin,
                         decision_id=record.decision_id)
        self.records.append(record)
        self._open[key] = record
        target = _TARGET_STATE.get(kind)
        if target is not None:
            self.intended[name] = target
        elif kind is CommandKind.SET_PSTATE:
            self.believed_pstate[name] = int(value)
        elif kind is CommandKind.APPLY_CAP:
            self.believed_cap[name] = float(value)
        elif kind is CommandKind.REMOVE_CAP:
            self.believed_cap[name] = None
        self.env.process(self._deliver(record),
                         name=f"cmd:{name}:{kind.value}")
        return record

    # ------------------------------------------------------------------
    # Delivery (impaired mode only)
    # ------------------------------------------------------------------
    def _deliver(self, record: CommandRecord):
        profile = self.profile
        server = self._servers[record.server_name]
        max_attempts = 1 + profile.max_retries
        while record.attempts < max_attempts:
            record.attempts += 1
            yield self.env.timeout(profile.latency_s)
            if self._superseded(record):
                return
            if self._rng.random() < profile.loss_probability:
                # Lost round trip: without retries the command is
                # simply gone; with them, wait out the ack timeout.
                record.lost_deliveries += 1
                if record.attempts >= max_attempts:
                    break
                yield self.env.timeout(
                    profile.ack_timeout_s - profile.latency_s
                    + self._backoff(record))
                if self._superseded(record):
                    return
                continue
            # Transient execution failure: the BMC rejects the command
            # *before* executing it and the NACK returns promptly.
            transient = (profile.transient_failure_probability > 0.0
                         and self._rng.random()
                         < profile.transient_failure_probability)
            if not transient:
                outcome, state = apply_command(server, record.kind,
                                               record.value)
                if outcome == "unreachable":
                    record.result = outcome
                    break
                if outcome != "busy":
                    # Executed; the ack (with resulting state) rides
                    # home on the return leg.
                    yield self.env.timeout(profile.latency_s)
                    record.acked_s = self.env.now
                    record.result = outcome
                    self._acked[record.server_name] = (state, self.env.now)
                    if self._open.get(record.key) is record:
                        del self._open[record.key]
                    return
            record.transient_failures += 1
            if record.attempts >= max_attempts:
                break
            yield self.env.timeout(
                profile.latency_s + self._backoff(record))
            if self._superseded(record):
                return
        record.gave_up = True
        if record.result is None:
            record.result = "lost"
        if self._open.get(record.key) is record:
            del self._open[record.key]
        tracer = self.env.tracer
        if tracer is not None:
            tracer.event("bus.gave_up", "control", key=record.key,
                         kind=record.kind.value,
                         attempts=record.attempts,
                         decision_id=record.decision_id)

    def _superseded(self, record: CommandRecord) -> bool:
        """A newer command took this record's idempotency key."""
        if self._open.get(record.key) is not record:
            record.result = "superseded"
            return True
        return False

    def _backoff(self, record: CommandRecord) -> float:
        profile = self.profile
        if self._jitter_rng is None:
            return min(profile.backoff_cap_s,
                       profile.backoff_base_s
                       * 2.0 ** (record.attempts - 1))
        # Decorrelated jitter: sleep ~ U(base, 3·previous sleep),
        # capped — growth comparable to exponential in expectation,
        # but no two commands' retry clocks stay phase-locked.
        base = profile.backoff_base_s
        prev = max(record.backoff_s, base)
        sleep = min(profile.backoff_cap_s,
                    float(self._jitter_rng.uniform(base, prev * 3.0)))
        record.backoff_s = sleep
        return sleep

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def open_commands(self) -> list[CommandRecord]:
        return [r for r in self.records if r.open]

    def gave_up_commands(self) -> list[CommandRecord]:
        return [r for r in self.records if r.gave_up]

    def max_attempts(self) -> int:
        """Most delivery attempts any command needed (0 if none)."""
        return max((r.attempts for r in self.records), default=0)
