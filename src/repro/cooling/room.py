"""The machine room: zones × CRACs coupled by a sensitivity matrix.

This is the co-simulation glue for the paper's cooling story: server
heat lands in zones, CRACs regulate on the return air *they see*, and
the conductance (sensitivity) matrix decides who actually gets cold
air.  A :class:`MachineRoom` runs as a process on the simulation
environment, stepping the thermal ODEs on a fine grid while the CRACs
decide on their own slow 15-minute schedule.
"""

from __future__ import annotations

import math
import typing

import numpy as np

from repro.cooling.crac import CRACUnit
from repro.cooling.zone import ThermalZone
from repro.sim import Environment, Monitor

__all__ = ["MachineRoom", "ThermalAlarm"]


class ThermalAlarm(typing.NamedTuple):
    """A zone crossed its protective temperature threshold."""

    time_s: float
    zone: str
    temp_c: float


class MachineRoom:
    """Zones and CRACs coupled through a conductance matrix.

    ``conductance_w_per_k[i][j]`` is the thermal conductance between
    zone ``i`` and CRAC ``j`` — the sensitivity structure of §5.1.
    Rows with one dominant entry mean the zone depends on a single
    CRAC; columns with one dominant entry mean the CRAC's return air
    (and therefore its control decisions) reflect mostly that zone.
    """

    def __init__(self, env: Environment,
                 zones: typing.Sequence[ThermalZone],
                 cracs: typing.Sequence[CRACUnit],
                 conductance_w_per_k: typing.Sequence[typing.Sequence[float]],
                 step_s: float = 30.0):
        matrix = np.asarray(conductance_w_per_k, dtype=float)
        if matrix.shape != (len(zones), len(cracs)):
            raise ValueError(
                f"conductance matrix shape {matrix.shape} does not match "
                f"{len(zones)} zones x {len(cracs)} CRACs")
        if (matrix < 0).any():
            raise ValueError("conductances must be non-negative")
        if step_s <= 0:
            raise ValueError("step must be positive")
        self.env = env
        self.zones = list(zones)
        self.cracs = list(cracs)
        self.conductance = matrix
        #: Design-time coupling, kept so failed CRACs can be repaired.
        self._nominal_conductance = matrix.copy()
        self.failed_cracs: set[int] = set()
        self.step_s = float(step_s)
        self.alarms: list[ThermalAlarm] = []
        self._alarm_callbacks: list[typing.Callable[[ThermalAlarm], None]] = []
        self._in_alarm: set[str] = set()
        self.zone_monitors = {z.name: Monitor(env, f"zone.{z.name}.temp_c")
                              for z in self.zones}
        self.mechanical_monitor = Monitor(env, "room.mechanical_w")
        #: Zone heat capacities never change after construction, so the
        #: fused thermal step gathers them once.
        self._capacitances = np.array([z.capacitance for z in self.zones])
        #: Static per-step lookups hoisted out of the fine loop.
        self._zone_monitor_list = [self.zone_monitors[z.name]
                                   for z in self.zones]
        self._alarm_temps = np.array([z.alarm_temp_c for z in self.zones])
        #: Per-CRAC conductance column sums; the matrix only changes
        #: through fail/repair, which invalidate this cache.
        self._col_totals: list | None = None

    def on_alarm(self, callback: typing.Callable[[ThermalAlarm], None]) -> None:
        """Register a callback fired on each new thermal alarm.

        The macro layer uses this to shut down / shed the affected
        servers, mirroring the protective behaviour of §2.2.
        """
        self._alarm_callbacks.append(callback)

    # ------------------------------------------------------------------
    def zone_temps(self) -> np.ndarray:
        """Current zone temperatures as one column.

        The per-CRAC queries below all consume this vector; callers
        looping over CRACs at one instant (``step_once``, the spine's
        economizer fold) build it once and pass it through instead of
        re-gathering ``zone.temp_c`` per CRAC — at 10³ zones ×
        hundreds of CRACs per fine step, that gather dominates the
        thermal loop.
        """
        return np.array([z.temp_c for z in self.zones])

    def return_temp_c(self, crac_index: int,
                      temps: np.ndarray | None = None) -> float:
        """Return-air temperature a CRAC senses.

        Conductance-weighted mix of zone temperatures: the CRAC
        ingests more air from the zones it is strongly coupled to.
        ``temps`` is an optional pre-gathered :meth:`zone_temps`
        vector (same values, so the result is bit-identical).
        """
        column = self.conductance[:, crac_index]
        totals = self._col_totals
        if totals is None:
            # Same per-column ``column.sum()`` reduction, cached until
            # a fail/repair rewrites the matrix.
            totals = self._col_totals = [
                self.conductance[:, j].sum()
                for j in range(len(self.cracs))]
        total = totals[crac_index]
        if temps is None:
            temps = self.zone_temps()
        if total <= 0:
            # A disconnected CRAC senses generic room air.
            return float(np.mean(temps))
        return float((column * temps).sum() / total)

    def heat_removed_w(self, crac_index: int,
                       temps: np.ndarray | None = None) -> float:
        """Heat the CRAC currently extracts from its coupled zones."""
        if crac_index in self.failed_cracs:
            return 0.0
        supply = self.cracs[crac_index].supply_temp_c
        column = self.conductance[:, crac_index]
        if temps is None:
            temps = self.zone_temps()
        return float(np.maximum(temps - supply, 0.0) @ column)

    def mechanical_power_w(self, temps: np.ndarray | None = None
                           ) -> float:
        """Total electrical power of the cooling plant right now.

        Inlines :meth:`heat_removed_w` per CRAC (same expressions,
        same fold order) — this runs for every unit on every fine
        thermal step, so the extra call layer was measurable.
        """
        if temps is None:
            temps = self.zone_temps()
        cracs = self.cracs
        if not cracs:
            return 0.0
        failed = self.failed_cracs
        matrix = self.conductance
        # One broadcast subtract+clip for all units; column ``j`` holds
        # exactly ``np.maximum(temps - supply_j, 0.0)`` (element-wise
        # IEEE ops, no reassociation), and the per-column ``@`` fold is
        # unchanged, so every per-CRAC heat is bit-identical.
        supplies = np.array([c.supply_temp_c for c in cracs])
        clipped = np.maximum(temps[:, None] - supplies, 0.0)
        total = 0.0
        for j, crac in enumerate(cracs):
            if j not in failed:
                heat = float(clipped[:, j] @ matrix[:, j])
                total += crac.mechanical_power_w(heat)
        return total

    # ------------------------------------------------------------------
    # CRAC failure domain (§2.2: cooling loss → thermal runaway)
    # ------------------------------------------------------------------
    def fail_crac(self, crac_index: int) -> None:
        """Take a CRAC offline: fans stop, its air paths carry nothing.

        Zeroes the unit's conductance column — zones it served now see
        only whatever cross-coupling other units provide, which is the
        thermal-runaway configuration behind protective shutdowns.
        """
        if not 0 <= crac_index < len(self.cracs):
            raise IndexError(f"no CRAC at index {crac_index}")
        self.failed_cracs.add(crac_index)
        self.conductance[:, crac_index] = 0.0
        self._col_totals = None

    def repair_crac(self, crac_index: int) -> None:
        """Bring a failed CRAC back, restoring its design coupling."""
        if crac_index not in self.failed_cracs:
            raise ValueError(f"CRAC {crac_index} is not failed")
        self.failed_cracs.discard(crac_index)
        self.conductance[:, crac_index] = (
            self._nominal_conductance[:, crac_index])
        self._col_totals = None

    def impaired_zones(self, dominance: float = 0.5) -> list[str]:
        """Zones that lost their dominant cooling path.

        A zone is impaired when failed CRACs carried more than
        ``dominance`` of its design conductance — left like this it
        will drift toward thermal alarm under load.
        """
        impaired = []
        for i, zone in enumerate(self.zones):
            total = self._nominal_conductance[i].sum()
            if total <= 0:
                continue
            lost = sum(self._nominal_conductance[i, j]
                       for j in self.failed_cracs)
            if lost / total > dominance:
                impaired.append(zone.name)
        return impaired

    # ------------------------------------------------------------------
    def _step_zones(self, dt_s: float) -> np.ndarray:
        """Advance every zone ``dt_s`` seconds in one fused update.

        Bit-identical to calling :meth:`ThermalZone.step` per zone:
        the conductance folds use ``cumsum``'s sequential left fold
        (the repo's bit-exactness convention for replacing ``sum``),
        every other operation is element-wise IEEE arithmetic in the
        scalar's evaluation order, and the exponential relaxation uses
        element-wise :func:`math.exp` because vectorized ``np.exp``
        may differ from libm by one ulp.  The per-zone loop with its
        O(zones x CRACs) Python generator folds was the hottest part
        of the thermal spine at scale.
        """
        zones = self.zones
        matrix = self.conductance
        heat = np.array([z.heat_load_w for z in zones])
        temps = np.array([z.temp_c for z in zones])
        cap = self._capacitances
        if matrix.shape[1]:
            supplies = np.array([c.supply_temp_c for c in self.cracs])
            g_total = np.cumsum(matrix, axis=1)[:, -1]
            weighted = np.cumsum(matrix * supplies, axis=1)[:, -1]
        else:
            g_total = np.zeros(len(zones))
            weighted = np.zeros(len(zones))
        # Adiabatic default (g_total <= 0): heat accumulates linearly,
        # in the scalar's ``temp + heat * dt / capacitance`` order.
        new = temps + heat * dt_s / cap
        pos = g_total > 0.0
        if pos.all():
            idx = slice(None)
            gt, t0, q, c = g_total, temps, heat, cap
        elif pos.any():
            idx = np.nonzero(pos)[0]
            gt, t0, q, c = g_total[idx], temps[idx], heat[idx], cap[idx]
        else:
            idx = None
        if idx is not None:
            t_eq = (q + weighted[idx]) / gt
            tau = c / gt
            args = (-dt_s) / tau
            decay = np.array([math.exp(a) for a in args])
            new[idx] = t_eq + (t0 - t_eq) * decay
        for i, zone in enumerate(zones):
            # np.float64 scalars, matching what the scalar step stores.
            zone.temp_c = new[i]
        return new

    def step_once(self) -> None:
        """Advance thermals by one step and let CRACs decide."""
        now = self.env.now
        # One fused update yields the post-step temperature vector that
        # every CRAC query below consumes.
        temps = self._step_zones(self.step_s)
        zones = self.zones
        for monitor, value in zip(self._zone_monitor_list, temps):
            # ``temps[i]`` is the exact value just stored on the zone;
            # passing ``now`` skips the per-sample env lookup.
            monitor.record(value, now)
        # ``_check_alarm`` only acts when a zone is at/above its trip
        # point or currently latched; the vector pre-check skips the
        # whole per-zone sweep on quiet steps.
        if self._in_alarm or (temps >= self._alarm_temps).any():
            for zone in zones:
                self._check_alarm(zone)
        tracer = self.env.tracer
        for j, crac in enumerate(self.cracs):
            if j not in self.failed_cracs:
                before = crac.commanded_supply_c
                crac.maybe_decide(now, self.return_temp_c(j, temps))
                if (tracer is not None
                        and crac.commanded_supply_c != before):
                    tracer.event("crac.setpoint", "control",
                                 crac=crac.name,
                                 supply_c=crac.commanded_supply_c,
                                 return_c=self.return_temp_c(j, temps))
        self.mechanical_monitor.record(self.mechanical_power_w(temps),
                                       now)

    def _check_alarm(self, zone: ThermalZone) -> None:
        if zone.in_alarm and zone.name not in self._in_alarm:
            self._in_alarm.add(zone.name)
            alarm = ThermalAlarm(self.env.now, zone.name, zone.temp_c)
            self.alarms.append(alarm)
            for callback in self._alarm_callbacks:
                callback(alarm)
        elif not zone.in_alarm and zone.name in self._in_alarm:
            self._in_alarm.discard(zone.name)

    def run(self):
        """Process generator: step thermals forever on the fine grid."""
        while True:
            self.step_once()
            yield self.env.timeout(self.step_s)

    # ------------------------------------------------------------------
    def zone(self, name: str) -> ThermalZone:
        """Look up a zone by name."""
        for zone in self.zones:
            if zone.name == name:
                return zone
        raise KeyError(f"no zone named {name!r}")

    def hottest_zone(self) -> ThermalZone:
        """The zone with the highest current temperature."""
        return max(self.zones, key=lambda z: z.temp_c)

    def ashrae_compliant(self, low_c: float = 20.0,
                         high_c: float = 25.0) -> bool:
        """Are all zones inside the ASHRAE recommended envelope (§2.2)?"""
        return all(low_c <= z.temp_c <= high_c for z in self.zones)
