"""The machine room: zones × CRACs coupled by a sensitivity matrix.

This is the co-simulation glue for the paper's cooling story: server
heat lands in zones, CRACs regulate on the return air *they see*, and
the conductance (sensitivity) matrix decides who actually gets cold
air.  A :class:`MachineRoom` runs as a process on the simulation
environment, stepping the thermal ODEs on a fine grid while the CRACs
decide on their own slow 15-minute schedule.
"""

from __future__ import annotations

import typing

import numpy as np

from repro.cooling.crac import CRACUnit
from repro.cooling.zone import ThermalZone
from repro.sim import Environment, Monitor

__all__ = ["MachineRoom", "ThermalAlarm"]


class ThermalAlarm(typing.NamedTuple):
    """A zone crossed its protective temperature threshold."""

    time_s: float
    zone: str
    temp_c: float


class MachineRoom:
    """Zones and CRACs coupled through a conductance matrix.

    ``conductance_w_per_k[i][j]`` is the thermal conductance between
    zone ``i`` and CRAC ``j`` — the sensitivity structure of §5.1.
    Rows with one dominant entry mean the zone depends on a single
    CRAC; columns with one dominant entry mean the CRAC's return air
    (and therefore its control decisions) reflect mostly that zone.
    """

    def __init__(self, env: Environment,
                 zones: typing.Sequence[ThermalZone],
                 cracs: typing.Sequence[CRACUnit],
                 conductance_w_per_k: typing.Sequence[typing.Sequence[float]],
                 step_s: float = 30.0):
        matrix = np.asarray(conductance_w_per_k, dtype=float)
        if matrix.shape != (len(zones), len(cracs)):
            raise ValueError(
                f"conductance matrix shape {matrix.shape} does not match "
                f"{len(zones)} zones x {len(cracs)} CRACs")
        if (matrix < 0).any():
            raise ValueError("conductances must be non-negative")
        if step_s <= 0:
            raise ValueError("step must be positive")
        self.env = env
        self.zones = list(zones)
        self.cracs = list(cracs)
        self.conductance = matrix
        #: Design-time coupling, kept so failed CRACs can be repaired.
        self._nominal_conductance = matrix.copy()
        self.failed_cracs: set[int] = set()
        self.step_s = float(step_s)
        self.alarms: list[ThermalAlarm] = []
        self._alarm_callbacks: list[typing.Callable[[ThermalAlarm], None]] = []
        self._in_alarm: set[str] = set()
        self.zone_monitors = {z.name: Monitor(env, f"zone.{z.name}.temp_c")
                              for z in self.zones}
        self.mechanical_monitor = Monitor(env, "room.mechanical_w")

    def on_alarm(self, callback: typing.Callable[[ThermalAlarm], None]) -> None:
        """Register a callback fired on each new thermal alarm.

        The macro layer uses this to shut down / shed the affected
        servers, mirroring the protective behaviour of §2.2.
        """
        self._alarm_callbacks.append(callback)

    # ------------------------------------------------------------------
    def return_temp_c(self, crac_index: int) -> float:
        """Return-air temperature a CRAC senses.

        Conductance-weighted mix of zone temperatures: the CRAC
        ingests more air from the zones it is strongly coupled to.
        """
        column = self.conductance[:, crac_index]
        total = column.sum()
        if total <= 0:
            # A disconnected CRAC senses generic room air.
            return float(np.mean([z.temp_c for z in self.zones]))
        temps = np.array([z.temp_c for z in self.zones])
        return float((column * temps).sum() / total)

    def heat_removed_w(self, crac_index: int) -> float:
        """Heat the CRAC currently extracts from its coupled zones."""
        if crac_index in self.failed_cracs:
            return 0.0
        supply = self.cracs[crac_index].supply_temp_c
        column = self.conductance[:, crac_index]
        temps = np.array([z.temp_c for z in self.zones])
        return float(np.maximum(temps - supply, 0.0) @ column)

    def mechanical_power_w(self) -> float:
        """Total electrical power of the cooling plant right now."""
        return sum(crac.mechanical_power_w(self.heat_removed_w(j))
                   for j, crac in enumerate(self.cracs)
                   if j not in self.failed_cracs)

    # ------------------------------------------------------------------
    # CRAC failure domain (§2.2: cooling loss → thermal runaway)
    # ------------------------------------------------------------------
    def fail_crac(self, crac_index: int) -> None:
        """Take a CRAC offline: fans stop, its air paths carry nothing.

        Zeroes the unit's conductance column — zones it served now see
        only whatever cross-coupling other units provide, which is the
        thermal-runaway configuration behind protective shutdowns.
        """
        if not 0 <= crac_index < len(self.cracs):
            raise IndexError(f"no CRAC at index {crac_index}")
        self.failed_cracs.add(crac_index)
        self.conductance[:, crac_index] = 0.0

    def repair_crac(self, crac_index: int) -> None:
        """Bring a failed CRAC back, restoring its design coupling."""
        if crac_index not in self.failed_cracs:
            raise ValueError(f"CRAC {crac_index} is not failed")
        self.failed_cracs.discard(crac_index)
        self.conductance[:, crac_index] = (
            self._nominal_conductance[:, crac_index])

    def impaired_zones(self, dominance: float = 0.5) -> list[str]:
        """Zones that lost their dominant cooling path.

        A zone is impaired when failed CRACs carried more than
        ``dominance`` of its design conductance — left like this it
        will drift toward thermal alarm under load.
        """
        impaired = []
        for i, zone in enumerate(self.zones):
            total = self._nominal_conductance[i].sum()
            if total <= 0:
                continue
            lost = sum(self._nominal_conductance[i, j]
                       for j in self.failed_cracs)
            if lost / total > dominance:
                impaired.append(zone.name)
        return impaired

    # ------------------------------------------------------------------
    def step_once(self) -> None:
        """Advance thermals by one step and let CRACs decide."""
        now = self.env.now
        supplies = [c.supply_temp_c for c in self.cracs]
        for i, zone in enumerate(self.zones):
            zone.step(self.step_s, supplies, list(self.conductance[i]))
            self.zone_monitors[zone.name].record(zone.temp_c)
            self._check_alarm(zone)
        tracer = self.env.tracer
        for j, crac in enumerate(self.cracs):
            if j not in self.failed_cracs:
                before = crac.commanded_supply_c
                crac.maybe_decide(now, self.return_temp_c(j))
                if (tracer is not None
                        and crac.commanded_supply_c != before):
                    tracer.event("crac.setpoint", "control",
                                 crac=crac.name,
                                 supply_c=crac.commanded_supply_c,
                                 return_c=self.return_temp_c(j))
        self.mechanical_monitor.record(self.mechanical_power_w())

    def _check_alarm(self, zone: ThermalZone) -> None:
        if zone.in_alarm and zone.name not in self._in_alarm:
            self._in_alarm.add(zone.name)
            alarm = ThermalAlarm(self.env.now, zone.name, zone.temp_c)
            self.alarms.append(alarm)
            for callback in self._alarm_callbacks:
                callback(alarm)
        elif not zone.in_alarm and zone.name in self._in_alarm:
            self._in_alarm.discard(zone.name)

    def run(self):
        """Process generator: step thermals forever on the fine grid."""
        while True:
            self.step_once()
            yield self.env.timeout(self.step_s)

    # ------------------------------------------------------------------
    def zone(self, name: str) -> ThermalZone:
        """Look up a zone by name."""
        for zone in self.zones:
            if zone.name == name:
                return zone
        raise KeyError(f"no zone named {name!r}")

    def hottest_zone(self) -> ThermalZone:
        """The zone with the highest current temperature."""
        return max(self.zones, key=lambda z: z.temp_c)

    def ashrae_compliant(self, low_c: float = 20.0,
                         high_c: float = 25.0) -> bool:
        """Are all zones inside the ASHRAE recommended envelope (§2.2)?"""
        return all(low_c <= z.temp_c <= high_c for z in self.zones)
