"""Cooling substrate: thermal zones, CRAC units, sensitivity coupling,
air-side economizer, and synthetic weather (paper §2.2, §4.5, §5.1)."""

from repro.cooling.crac import CRACUnit, default_cop
from repro.cooling.economizer import (
    AirSideEconomizer,
    EconomizerDecision,
    EconomizerMode,
)
from repro.cooling.room import MachineRoom, ThermalAlarm
from repro.cooling.sensing import SensitivityEstimator, probe_schedule
from repro.cooling.weather import (
    DUBLIN_LIKE,
    PHOENIX_LIKE,
    SEATTLE_LIKE,
    WeatherModel,
)
from repro.cooling.zone import ThermalZone

__all__ = [
    "AirSideEconomizer",
    "CRACUnit",
    "DUBLIN_LIKE",
    "EconomizerDecision",
    "EconomizerMode",
    "MachineRoom",
    "PHOENIX_LIKE",
    "SEATTLE_LIKE",
    "SensitivityEstimator",
    "ThermalAlarm",
    "probe_schedule",
    "ThermalZone",
    "WeatherModel",
    "default_cop",
]
