"""Learning the CRAC sensitivity matrix from sensor data (§4.5).

    "With latest advances in sensing, especially wireless sensor
    networks, we are able to collect data center environmental
    conditions at a fine granularity.  The ground truth data are more
    accurate than the simulation, and gathering those bridges the gaps
    between servers and CRAC systems."

The §5.1 hazard analysis needs the zone↔CRAC conductance matrix — but
nobody hands operators that matrix; Project Genome's contribution was
*measuring* it.  :class:`SensitivityEstimator` does the same from
passive observations: at near-steady operation each zone satisfies

    Q_i  =  Σ_j G_ij · (T_i − S_j)

which is linear in the unknown row ``G_i*``, so a collection of
(zone temps, supply temps, heat loads) snapshots under varied
conditions yields each row by non-negative least squares.
"""

from __future__ import annotations

import numpy as np

from repro.cooling.room import MachineRoom

__all__ = ["SensitivityEstimator", "probe_schedule"]


class SensitivityEstimator:
    """Estimate zone↔CRAC conductances from steady-state snapshots."""

    def __init__(self, n_zones: int, n_cracs: int):
        if n_zones < 1 or n_cracs < 1:
            raise ValueError("need at least one zone and one CRAC")
        self.n_zones = n_zones
        self.n_cracs = n_cracs
        self._rows: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []

    def observe(self, zone_temps_c, supply_temps_c, heat_loads_w) -> None:
        """Record one near-steady snapshot."""
        temps = np.asarray(zone_temps_c, dtype=float)
        supplies = np.asarray(supply_temps_c, dtype=float)
        heats = np.asarray(heat_loads_w, dtype=float)
        if temps.shape != (self.n_zones,):
            raise ValueError(f"expected {self.n_zones} zone temps")
        if supplies.shape != (self.n_cracs,):
            raise ValueError(f"expected {self.n_cracs} supply temps")
        if heats.shape != (self.n_zones,):
            raise ValueError(f"expected {self.n_zones} heat loads")
        self._rows.append((temps, supplies, heats))

    @property
    def snapshots(self) -> int:
        return len(self._rows)

    def estimate(self) -> np.ndarray:
        """The conductance matrix (W/K), non-negative least squares.

        Needs at least ``n_cracs`` diverse snapshots; raises otherwise.
        NNLS is implemented as clipped iterated least squares (no scipy
        dependency): solve, clip negatives to zero, re-solve on the
        active set.
        """
        if len(self._rows) < self.n_cracs:
            raise ValueError(
                f"need >= {self.n_cracs} snapshots, have {len(self._rows)}")
        estimate = np.zeros((self.n_zones, self.n_cracs))
        for i in range(self.n_zones):
            # Design matrix: rows are snapshots, columns CRACs,
            # entries (T_i − S_j); target Q_i.
            design = np.array([[temps[i] - supplies[j]
                                for j in range(self.n_cracs)]
                               for temps, supplies, _ in self._rows])
            target = np.array([heats[i] for _, _, heats in self._rows])
            active = np.ones(self.n_cracs, dtype=bool)
            row = np.zeros(self.n_cracs)
            for _ in range(self.n_cracs + 1):
                if not active.any():
                    break
                sub = design[:, active]
                solution, *_ = np.linalg.lstsq(sub, target, rcond=None)
                if (solution >= -1e-9).all():
                    row[:] = 0.0
                    row[active] = np.clip(solution, 0.0, None)
                    break
                # Deactivate the most negative coefficient and retry.
                full = np.full(self.n_cracs, np.inf)
                full[active] = solution
                active[np.argmin(full)] = False
            estimate[i] = row
        return estimate

    def relative_error(self, truth) -> float:
        """‖Ĝ − G‖₁ / ‖G‖₁ against a known matrix (for validation)."""
        truth = np.asarray(truth, dtype=float)
        return float(np.abs(self.estimate() - truth).sum()
                     / np.abs(truth).sum())


def probe_schedule(room: MachineRoom, heat_levels_w, settle_s: float,
                   env, estimator: SensitivityEstimator):
    """Process generator: actively probe the room and feed snapshots.

    Steps through ``heat_levels_w`` — each entry is a per-zone heat
    assignment — letting the room settle between steps, then records
    the (zone temps, supply temps, heats) triple.  This is the sensor-
    network experiment Project Genome ran, in simulation.
    """
    for assignment in heat_levels_w:
        for zone, heat in zip(room.zones, assignment):
            zone.set_heat_load(float(heat))
        yield env.timeout(settle_s)
        estimator.observe(
            [z.temp_c for z in room.zones],
            [c.supply_temp_c for c in room.cracs],
            list(assignment))
