"""Lumped-parameter thermal zones (paper Figure 2, §2.2).

A *zone* is a region of the machine room — a few racks on the cold
aisle — modeled as one thermal mass.  The energy balance couples the
zone to every CRAC through a conductance (W/K) that encodes how much
of that CRAC's cold air actually reaches the zone:

    C_i · dT_i/dt = Q_i(t) − Σ_j G_ij · (T_i − T_supply_j)

The conductance matrix **G is the paper's "CRAC sensitivity"** (§5.1,
Project Genome [30]): a CRAC with a large G to zone A and a tiny G to
zone B "regulates temperature much better at some locations than
others" — exactly the asymmetry behind the migration hazard we
reproduce in EXP-CRAC.
"""

from __future__ import annotations

import math

__all__ = ["ThermalZone", "AIR_SPECIFIC_HEAT_J_PER_KG_K", "AIR_DENSITY_KG_PER_M3"]

AIR_SPECIFIC_HEAT_J_PER_KG_K = 1005.0
AIR_DENSITY_KG_PER_M3 = 1.2


class ThermalZone:
    """One lumped thermal mass inside the machine room.

    Parameters
    ----------
    name:
        Zone identifier (e.g. ``"cold-aisle-A"``).
    thermal_capacitance_j_per_k:
        Heat capacity of the air volume plus nearby steel/racks.  A
        4 m × 6 m × 3 m aisle of air alone is ≈ 87 kJ/K; racks and
        building materials add an order of magnitude — the paper's
        "thermo properties of servers and building materials" that
        stretch propagation delays.
    initial_temp_c:
        Starting air temperature.
    alarm_temp_c:
        Inlet temperature at which server protective sensors trip
        (§2.2: "servers have protective temperature sensors which
        will shut down the server").
    """

    def __init__(self, name: str,
                 thermal_capacitance_j_per_k: float = 800_000.0,
                 initial_temp_c: float = 22.0,
                 alarm_temp_c: float = 32.0):
        if thermal_capacitance_j_per_k <= 0:
            raise ValueError("thermal capacitance must be positive")
        self.name = name
        self.capacitance = float(thermal_capacitance_j_per_k)
        self.temp_c = float(initial_temp_c)
        self.alarm_temp_c = float(alarm_temp_c)
        self.heat_load_w = 0.0

    def set_heat_load(self, watts: float) -> None:
        """Update the IT heat dissipated into this zone."""
        if watts < 0:
            raise ValueError(f"negative heat load {watts}")
        self.heat_load_w = float(watts)

    def step(self, dt_s: float,
             supply_temps_c: list[float],
             conductances_w_per_k: list[float]) -> float:
        """Advance the zone ``dt_s`` seconds; returns the new temperature.

        Uses the exact exponential solution of the linear ODE over the
        step (supply temperatures and load held constant), so the
        integration is unconditionally stable even with the long steps
        a 15-minute CRAC period encourages.
        """
        if dt_s <= 0:
            raise ValueError(f"dt must be positive, got {dt_s}")
        if len(supply_temps_c) != len(conductances_w_per_k):
            raise ValueError("supply temps and conductances length mismatch")
        g_total = sum(conductances_w_per_k)
        if g_total <= 0:
            # Adiabatic zone: heat accumulates linearly.
            self.temp_c += self.heat_load_w * dt_s / self.capacitance
            return self.temp_c
        # Equilibrium the zone relaxes toward.
        t_eq = (self.heat_load_w
                + sum(g * ts for g, ts in
                      zip(conductances_w_per_k, supply_temps_c))) / g_total
        tau = self.capacitance / g_total
        self.temp_c = t_eq + (self.temp_c - t_eq) * math.exp(-dt_s / tau)
        return self.temp_c

    def equilibrium_temp_c(self, supply_temps_c: list[float],
                           conductances_w_per_k: list[float]) -> float:
        """Steady-state temperature under the given supply conditions."""
        g_total = sum(conductances_w_per_k)
        if g_total <= 0:
            return float("inf") if self.heat_load_w > 0 else self.temp_c
        return (self.heat_load_w
                + sum(g * ts for g, ts in
                      zip(conductances_w_per_k, supply_temps_c))) / g_total

    @property
    def in_alarm(self) -> bool:
        """True if servers in this zone would trip thermal protection."""
        return self.temp_c >= self.alarm_temp_c

    def __repr__(self) -> str:
        return (f"<ThermalZone {self.name!r} T={self.temp_c:.1f}C "
                f"Q={self.heat_load_w:.0f}W>")
