"""Synthetic outside weather.

§2.2: "the industry has moved to extensive use of air-side
economizers ... However, the temperature and humidity of outside air
change continuously, bringing additional challenges to cooling
control."  The economizer experiments need a year of plausible
outside conditions; this generator supplies them deterministically.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["WeatherModel", "SEATTLE_LIKE", "PHOENIX_LIKE", "DUBLIN_LIKE"]

_DAY_S = 86_400.0
_YEAR_S = 365.0 * _DAY_S


class WeatherModel:
    """Deterministic-plus-noise outside temperature and humidity.

    Temperature = annual sinusoid + diurnal sinusoid + weather-system
    noise (smooth, via a slow random walk seeded per model).  Relative
    humidity moves inversely with the diurnal temperature swing, as it
    does physically for a fixed moisture content.
    """

    def __init__(self, mean_temp_c: float = 12.0,
                 annual_swing_c: float = 10.0,
                 diurnal_swing_c: float = 6.0,
                 noise_c: float = 3.0,
                 mean_rh: float = 0.6,
                 seed: int = 0):
        if not 0.0 < mean_rh < 1.0:
            raise ValueError("mean_rh must be in (0, 1)")
        self.mean_temp_c = float(mean_temp_c)
        self.annual_swing_c = float(annual_swing_c)
        self.diurnal_swing_c = float(diurnal_swing_c)
        self.noise_c = float(noise_c)
        self.mean_rh = float(mean_rh)
        self._rng = np.random.Generator(np.random.PCG64(seed))
        # Pre-draw a year of daily weather-system offsets so queries
        # are pure functions of time (any order, repeatable).
        self._daily_offsets = self._rng.normal(0.0, noise_c, size=366)

    def temperature_c(self, t_s: float) -> float:
        """Outside dry-bulb temperature at simulation time ``t_s``."""
        annual = -math.cos(2 * math.pi * t_s / _YEAR_S) * self.annual_swing_c
        # Diurnal peak mid-afternoon (hour 15).
        hour = (t_s % _DAY_S) / 3600.0
        diurnal = -math.cos(2 * math.pi * (hour - 3.0) / 24.0) \
            * self.diurnal_swing_c / 2.0
        day = int(t_s // _DAY_S) % len(self._daily_offsets)
        return self.mean_temp_c + annual + diurnal + self._daily_offsets[day]

    def relative_humidity(self, t_s: float) -> float:
        """Relative humidity in [0.05, 0.99] at time ``t_s``.

        Anti-correlated with the diurnal temperature swing: afternoons
        are drier, nights damper.
        """
        hour = (t_s % _DAY_S) / 3600.0
        diurnal = math.cos(2 * math.pi * (hour - 3.0) / 24.0) * 0.15
        day = int(t_s // _DAY_S) % len(self._daily_offsets)
        wobble = (self._daily_offsets[day] / max(self.noise_c, 1e-9)) * 0.05
        return float(min(max(self.mean_rh + diurnal - wobble, 0.05), 0.99))


def SEATTLE_LIKE(seed: int = 0) -> WeatherModel:
    """Mild maritime climate: economizer-friendly most of the year."""
    return WeatherModel(mean_temp_c=11.0, annual_swing_c=8.0,
                        diurnal_swing_c=6.0, noise_c=2.5,
                        mean_rh=0.72, seed=seed)


def PHOENIX_LIKE(seed: int = 0) -> WeatherModel:
    """Hot desert climate: economizer rarely usable in summer."""
    return WeatherModel(mean_temp_c=23.0, annual_swing_c=12.0,
                        diurnal_swing_c=10.0, noise_c=2.0,
                        mean_rh=0.30, seed=seed)


def DUBLIN_LIKE(seed: int = 0) -> WeatherModel:
    """Cool oceanic climate: near-year-round free cooling."""
    return WeatherModel(mean_temp_c=9.5, annual_swing_c=6.0,
                        diurnal_swing_c=5.0, noise_c=2.0,
                        mean_rh=0.80, seed=seed)
