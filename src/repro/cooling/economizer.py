"""Air-side economizer: free cooling with outside air.

§2.2: "the industry has moved to extensive use of air-side
economizers, using outside air to cool data centers directly, rather
than relying on energy consuming water chillers."

The controller selects among three modes each decision:

* ``FREE`` — outside air is cold and dry enough; only fans run.
* ``MIXED`` — outside air helps but needs trimming by the chiller.
* ``CHILLER`` — outside conditions unusable; full mechanical cooling.

Mode admission checks both temperature *and* humidity, because §2.2
flags continuously-varying outside humidity as the hard part: server
rooms must stay inside the ASHRAE envelope, and very damp (or very
dry) air cannot be pushed straight through the racks.
"""

from __future__ import annotations

import enum
import typing

from repro.cooling.crac import default_cop
from repro.cooling.weather import WeatherModel

__all__ = ["EconomizerMode", "AirSideEconomizer", "EconomizerDecision"]


class EconomizerMode(enum.Enum):
    """Which cooling path is active."""

    FREE = "free"
    MIXED = "mixed"
    CHILLER = "chiller"


class EconomizerDecision(typing.NamedTuple):
    """One control decision with its inputs, for audit trails."""

    time_s: float
    mode: EconomizerMode
    outside_temp_c: float
    outside_rh: float
    mechanical_power_w: float


class AirSideEconomizer:
    """Choose cooling mode and compute mechanical power for a heat load.

    Parameters
    ----------
    free_below_c:
        Outside temperatures at or below this allow 100 % free cooling
        (need a few degrees of approach below the supply setpoint).
    mixed_below_c:
        Between ``free_below_c`` and this, outside air pre-cools and
        the chiller trims the remainder proportionally.
    rh_low / rh_high:
        Admission band on outside relative humidity; outside it the
        unit falls back to the chiller (humidification/dehumidification
        costs would erase the savings).
    fan_power_per_kw:
        Fan watts per kW of heat moved when using outside air (free
        cooling is not literally free).
    """

    def __init__(self, supply_setpoint_c: float = 18.0,
                 free_below_c: float = 15.0,
                 mixed_below_c: float = 24.0,
                 rh_low: float = 0.20,
                 rh_high: float = 0.80,
                 fan_power_per_kw: float = 40.0,
                 cop_curve=default_cop):
        if free_below_c >= mixed_below_c:
            raise ValueError("free threshold must be below mixed threshold")
        if not 0.0 <= rh_low < rh_high <= 1.0:
            raise ValueError("need 0 <= rh_low < rh_high <= 1")
        self.supply_setpoint_c = float(supply_setpoint_c)
        self.free_below_c = float(free_below_c)
        self.mixed_below_c = float(mixed_below_c)
        self.rh_low = float(rh_low)
        self.rh_high = float(rh_high)
        self.fan_power_per_kw = float(fan_power_per_kw)
        self.cop_curve = cop_curve
        self.decisions: list[EconomizerDecision] = []

    def select_mode(self, outside_temp_c: float,
                    outside_rh: float) -> EconomizerMode:
        """Admission logic for the given outside conditions."""
        humidity_ok = self.rh_low <= outside_rh <= self.rh_high
        if not humidity_ok:
            return EconomizerMode.CHILLER
        if outside_temp_c <= self.free_below_c:
            return EconomizerMode.FREE
        if outside_temp_c <= self.mixed_below_c:
            return EconomizerMode.MIXED
        return EconomizerMode.CHILLER

    def mechanical_power_w(self, heat_load_w: float, outside_temp_c: float,
                           outside_rh: float,
                           time_s: float = 0.0) -> float:
        """Cooling power for ``heat_load_w`` under outside conditions."""
        if heat_load_w < 0:
            raise ValueError(f"negative heat load {heat_load_w}")
        mode = self.select_mode(outside_temp_c, outside_rh)
        fan_w = heat_load_w / 1000.0 * self.fan_power_per_kw
        chiller_cop = self.cop_curve(self.supply_setpoint_c)

        if mode is EconomizerMode.FREE:
            power = fan_w
        elif mode is EconomizerMode.CHILLER:
            power = heat_load_w / chiller_cop + fan_w
        else:
            # Outside air removes a share proportional to how far the
            # outside temperature sits below the mixed threshold.
            span = self.mixed_below_c - self.free_below_c
            free_share = (self.mixed_below_c - outside_temp_c) / span
            chiller_load = heat_load_w * (1.0 - free_share)
            power = chiller_load / chiller_cop + fan_w
        self.decisions.append(EconomizerDecision(
            time_s, mode, outside_temp_c, outside_rh, power))
        return power

    def annual_energy_j(self, weather: WeatherModel, heat_load_w: float,
                        step_s: float = 3600.0,
                        duration_s: float = 365 * 86_400.0) -> float:
        """Integrate mechanical energy over a synthetic year."""
        if step_s <= 0:
            raise ValueError("step must be positive")
        total = 0.0
        t = 0.0
        while t < duration_s:
            power = self.mechanical_power_w(
                heat_load_w, weather.temperature_c(t),
                weather.relative_humidity(t), time_s=t)
            total += power * min(step_s, duration_s - t)
            t += step_s
        return total

    def mode_fractions(self) -> dict[EconomizerMode, float]:
        """Share of past decisions spent in each mode."""
        if not self.decisions:
            return {mode: 0.0 for mode in EconomizerMode}
        n = len(self.decisions)
        return {mode: sum(d.mode is mode for d in self.decisions) / n
                for mode in EconomizerMode}
