"""Computer Room Air Conditioning units.

§2.2: "Air cooling systems have slow dynamics.  To avoid over reaction
and oscillation, CRAC units usually react every 15 minutes.  Their
actions also take long propagation delays to reach the servers."

The CRAC here is a dead-band thermostat on *return-air* temperature
that moves its supply setpoint in fixed increments once per control
period, plus a pure transport delay between commanding a supply
temperature and the cold air actually arriving at the racks.

The chiller work needed to produce the supply air follows a
coefficient-of-performance (COP) curve that improves with warmer
supply air — the physical reason conservative (cold) setpoints are
expensive and economizers/setpoint raises save energy.
"""

from __future__ import annotations

import collections

__all__ = ["CRACUnit", "default_cop"]


def default_cop(supply_temp_c: float) -> float:
    """Chilled-water COP as a function of supply temperature.

    Quadratic fit published for an HP Utility Data Center chiller
    (Moore et al., USENIX '05): COP = 0.0068·T² + 0.0008·T + 0.458.
    At 15 °C supply the plant moves ≈ 2 W of heat per watt of work; at
    25 °C nearly 5 W — the lever dynamic smart cooling pulls.
    """
    return 0.0068 * supply_temp_c ** 2 + 0.0008 * supply_temp_c + 0.458


class CRACUnit:
    """One CRAC: dead-band control, transport delay, COP energy model.

    Parameters
    ----------
    control_period_s:
        Seconds between control decisions (paper: 900 s).
    transport_delay_s:
        Delay before a commanded supply temperature takes effect at
        the racks (air path + coil thermal mass).
    return_setpoint_c / deadband_c:
        The thermostat: if return air is hotter than setpoint + band,
        lower supply temperature; colder than setpoint − band, raise.
    supply_step_c:
        Setpoint increment per decision — deliberately coarse, as real
        units are, to avoid oscillation at the cost of sluggishness.
    fan_power_w:
        Fixed power of the blowers, drawn whenever the unit runs.
    """

    def __init__(self, name: str = "crac",
                 control_period_s: float = 900.0,
                 transport_delay_s: float = 120.0,
                 return_setpoint_c: float = 24.0,
                 deadband_c: float = 1.0,
                 supply_step_c: float = 1.0,
                 supply_min_c: float = 10.0,
                 supply_max_c: float = 20.0,
                 initial_supply_c: float = 14.0,
                 fan_power_w: float = 3_000.0,
                 cop_curve=default_cop):
        if control_period_s <= 0:
            raise ValueError("control period must be positive")
        if transport_delay_s < 0:
            raise ValueError("transport delay cannot be negative")
        if supply_min_c >= supply_max_c:
            raise ValueError("supply_min must be below supply_max")
        if not supply_min_c <= initial_supply_c <= supply_max_c:
            raise ValueError("initial supply outside limits")
        self.name = name
        self.control_period_s = float(control_period_s)
        self.transport_delay_s = float(transport_delay_s)
        self.return_setpoint_c = float(return_setpoint_c)
        self.deadband_c = float(deadband_c)
        self.supply_step_c = float(supply_step_c)
        self.supply_min_c = float(supply_min_c)
        self.supply_max_c = float(supply_max_c)
        self.fan_power_w = float(fan_power_w)
        self.cop_curve = cop_curve

        self._commanded_supply_c = float(initial_supply_c)
        self._effective_supply_c = float(initial_supply_c)
        # Pending (time_due, value) supply changes in flight.
        self._in_flight: collections.deque[tuple[float, float]] = (
            collections.deque())
        self._next_decision_s = 0.0
        self.decisions: list[tuple[float, float, float]] = []

    # ------------------------------------------------------------------
    @property
    def supply_temp_c(self) -> float:
        """Supply temperature currently delivered at the racks."""
        return self._effective_supply_c

    @property
    def commanded_supply_c(self) -> float:
        """Most recently commanded setpoint (may not have arrived yet)."""
        return self._commanded_supply_c

    def advance(self, now_s: float) -> None:
        """Apply any in-flight supply changes that are now due."""
        while self._in_flight and self._in_flight[0][0] <= now_s:
            _, value = self._in_flight.popleft()
            self._effective_supply_c = value

    def command_supply(self, now_s: float, temp_c: float) -> None:
        """Command a new supply temperature (subject to transport delay)."""
        clamped = min(max(temp_c, self.supply_min_c), self.supply_max_c)
        self._commanded_supply_c = clamped
        self._in_flight.append((now_s + self.transport_delay_s, clamped))

    def maybe_decide(self, now_s: float, return_temp_c: float) -> bool:
        """Run the thermostat if a control period has elapsed.

        Returns True when a decision was taken.  ``return_temp_c`` is
        the temperature of the air the unit ingests — note it reflects
        only the zones this CRAC is *sensitive to*, which is the crux
        of the §5.1 hazard.
        """
        self.advance(now_s)
        if now_s < self._next_decision_s:
            return False
        self._next_decision_s = now_s + self.control_period_s

        error = return_temp_c - self.return_setpoint_c
        if error > self.deadband_c:
            target = self._commanded_supply_c - self.supply_step_c
        elif error < -self.deadband_c:
            target = self._commanded_supply_c + self.supply_step_c
        else:
            self.decisions.append((now_s, return_temp_c,
                                   self._commanded_supply_c))
            return True
        self.command_supply(now_s, target)
        self.decisions.append((now_s, return_temp_c,
                               self._commanded_supply_c))
        return True

    def mechanical_power_w(self, heat_removed_w: float) -> float:
        """Electrical power to remove ``heat_removed_w`` of IT heat."""
        if heat_removed_w < 0:
            heat_removed_w = 0.0
        cop = self.cop_curve(self._effective_supply_c)
        if cop <= 0:
            raise ValueError(f"non-positive COP at "
                             f"{self._effective_supply_c} C supply")
        return heat_removed_w / cop + self.fan_power_w

    def __repr__(self) -> str:
        return (f"<CRACUnit {self.name!r} supply={self.supply_temp_c:.1f}C "
                f"setpoint={self.return_setpoint_c:.1f}C>")
