"""Exact small-instance oracle: branch-and-bound bin minimization.

The heuristic packer trades optimality for scale; this module is the
referee.  It solves the Γ-robust bin-packing instance *exactly* —
minimum number of identical-capacity hosts such that every host
satisfies ``sum(centers) + (Γ largest radii) <= capacity`` — with a
plain depth-first branch-and-bound (no external MILP solver, pure
python), which is MILP-equivalent on the small instances tests throw
at it.  First-fit-decreasing carries the classic ``(11/9)·OPT + 1``
guarantee for additive bin packing; the test suite uses this oracle to
certify the heuristic stays within ``OPT + 1`` hosts on randomized
small instances, robust term included.

Search order and pruning:

* items are processed in decreasing ``center + radius`` order (big
  rocks first narrows the tree fastest);
* at each node the item may join any *distinct-looking* open bin or
  exactly one fresh bin (opening two interchangeable empty bins is the
  classic symmetry we break);
* a node is pruned when ``bins open + ceil(remaining centers /
  capacity)`` cannot beat the incumbent — an admissible bound because
  the robust term only ever adds load.
"""

from __future__ import annotations

import math
import typing

import numpy as np

from repro.placement.uncertain import UncertainDemand

__all__ = ["oracle_pack", "OracleResult"]


class OracleResult(typing.NamedTuple):
    """Certified optimum for one small instance."""

    bins: int
    #: Bin index per item, in the *input* order of the demand.
    assignment: tuple[int, ...]
    #: Search nodes expanded (a cost/debug gauge for tests).
    nodes: int


def _bin_feasible(centers: list[float], radii: list[float],
                  capacity: float, gamma: int) -> bool:
    load = sum(centers) + sum(sorted(radii, reverse=True)[:gamma])
    return load <= capacity + 1e-9


def oracle_pack(demand: UncertainDemand, capacity: float,
                gamma: int = 1, node_limit: int = 500_000
                ) -> OracleResult:
    """Exact minimum-host packing under the Γ-robust constraint.

    Raises :class:`ValueError` when some single item cannot fit any
    host (the instance is infeasible outright) and
    :class:`RuntimeError` when the search exceeds ``node_limit``
    nodes — the oracle is for *small* instances; hand big ones to the
    heuristic.
    """
    if capacity <= 0:
        raise ValueError("capacity must be positive")
    if gamma < 0:
        raise ValueError("gamma cannot be negative")
    n = len(demand)
    if n == 0:
        return OracleResult(0, (), 0)
    order = np.argsort(-demand.worst_case, kind="stable")
    centers = demand.center[order]
    radii = demand.radius[order]
    for uc, ur in zip(centers, radii):
        if not _bin_feasible([float(uc)], [float(ur)], capacity, gamma):
            raise ValueError("an item exceeds host capacity even alone")
    remaining_suffix = np.concatenate(
        [np.cumsum(centers[::-1])[::-1], [0.0]])

    best_bins = n + 1
    best_assignment: list[int] | None = None
    bin_centers: list[list[float]] = []
    bin_radii: list[list[float]] = []
    assignment = [-1] * n
    nodes = 0

    def dfs(item: int) -> None:
        nonlocal best_bins, best_assignment, nodes
        nodes += 1
        if nodes > node_limit:
            raise RuntimeError(
                f"oracle exceeded {node_limit} nodes; instance too big")
        if item == n:
            if len(bin_centers) < best_bins:
                best_bins = len(bin_centers)
                best_assignment = assignment.copy()
            return
        # Admissible lower bound: open bins + pure-volume need of the
        # remaining items (robust term only makes bins fuller).
        lower = max(len(bin_centers),
                    math.ceil(remaining_suffix[0] / capacity
                              - 1e-12))
        free = sum(capacity - sum(c) for c in bin_centers)
        need = remaining_suffix[item] - free
        if need > 0:
            lower = max(lower, len(bin_centers)
                        + math.ceil(need / capacity - 1e-12))
        if lower >= best_bins:
            return
        uc, ur = float(centers[item]), float(radii[item])
        seen: set[tuple[float, float]] = set()
        for b in range(len(bin_centers)):
            # Bins with identical (center sum, robust term) are
            # interchangeable — trying one of them suffices.
            signature = (round(sum(bin_centers[b]), 9),
                         round(sum(sorted(bin_radii[b], reverse=True)
                                   [:gamma]), 9))
            if signature in seen:
                continue
            seen.add(signature)
            if _bin_feasible(bin_centers[b] + [uc],
                             bin_radii[b] + [ur], capacity, gamma):
                bin_centers[b].append(uc)
                bin_radii[b].append(ur)
                assignment[item] = b
                dfs(item + 1)
                bin_centers[b].pop()
                bin_radii[b].pop()
                assignment[item] = -1
        if len(bin_centers) + 1 < best_bins:
            bin_centers.append([uc])
            bin_radii.append([ur])
            assignment[item] = len(bin_centers) - 1
            dfs(item + 1)
            bin_centers.pop()
            bin_radii.pop()
            assignment[item] = -1

    dfs(0)
    assert best_assignment is not None  # one-bin-per-item always works
    in_input_order = [0] * n
    for rank, original in enumerate(order.tolist()):
        in_input_order[original] = best_assignment[rank]
    return OracleResult(best_bins, tuple(in_input_order), nodes)
