"""Γ-robust VM consolidation (paper §4.4, §5; Bertsimas–Sim robustness).

The deterministic packers in :mod:`repro.cluster.placement` trust
point demand estimates — the exact fiction §4.4 warns about: "hardware
resource utilization across VMs are not additive", and demand moves
between consolidation cycles.  This package models each VM's CPU
demand as an uncertain interval ``[uc - ur, uc + ur]`` and packs with
a Γ-robustness constraint: a host assignment is feasible when the sum
of demand centers **plus the Γ largest radii** fits capacity, i.e. the
packing survives any Γ residents spiking to their worst case at once.

* :mod:`repro.placement.uncertain` — interval demand model + builders
  from live :class:`~repro.cluster.vm.VirtualMachine` populations and
  plain arrays;
* :mod:`repro.placement.robust` — the scalable first-fit-decreasing
  Γ-robust packer with vectorized (block-scanned) feasibility that
  runs on plain numpy columns, :class:`~repro.cluster.vm.VMHost`
  pools, or :class:`~repro.fleet.plant.VectorFleet` capacity columns;
* :mod:`repro.placement.oracle` — an exact branch-and-bound
  bin-minimization oracle (pure python, MILP-equivalent on small
  instances) used by tests to certify heuristic quality;
* :mod:`repro.placement.txn` — transactional migration batches: each
  move can be lost, time out, or fail mid-copy; partial batches roll
  back to the pre-batch placement;
* :mod:`repro.placement.manager` — the consolidation loop that plans
  Γ-robustly, executes batches transactionally, evacuates failed
  hosts, and reconciles diverged placements by re-planning (never by
  double-moving), stamping every cycle into the AuditTrail.
"""

from repro.placement.manager import RobustConsolidationManager
from repro.placement.oracle import oracle_pack
from repro.placement.robust import (
    GammaRobustPacker,
    PackResult,
    overload_probability,
)
from repro.placement.txn import (
    BatchResult,
    MigrationBatchProfile,
    Move,
    TransactionalMigrationExecutor,
)
from repro.placement.uncertain import UncertainDemand

__all__ = [
    "UncertainDemand",
    "GammaRobustPacker",
    "PackResult",
    "overload_probability",
    "oracle_pack",
    "Move",
    "MigrationBatchProfile",
    "BatchResult",
    "TransactionalMigrationExecutor",
    "RobustConsolidationManager",
]
