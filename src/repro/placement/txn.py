"""Transactional migration batches over a fallible command path.

A consolidation plan is a *batch* of live migrations, and the paper's
§4.4 warning — "certain resource allocations, such as VM migration ...
take minutes to make effects" — means the world changes while the
batch runs: commands get lost on the way to the hypervisor, copies die
mid-flight, endpoints fail.  A half-executed plan is worse than no
plan: the fleet ends up in a placement nobody chose, with demand
spilled across hosts the packer never budgeted.

:class:`TransactionalMigrationExecutor` therefore executes plans with
all-or-nothing intent: moves run in order through the (fault-aware)
:class:`~repro.cluster.migration.MigrationManager`; each move retries
lost deliveries and mid-copy crashes with decorrelated-jittered
backoff; a move that fails terminally (endpoint dead, retries
exhausted) aborts the batch and **rolls back** every committed move of
the batch in reverse order, restoring the placement the fleet started
from.  Rollbacks travel the same unreliable path — a rollback that
itself fails is reported, leaving reconciliation (see
:mod:`repro.placement.manager`) to re-plan from actual state rather
than blindly re-issuing stale moves.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.cluster.migration import MigrationManager
from repro.cluster.vm import VMHost, VirtualMachine
from repro.sim import Environment, RandomStreams

__all__ = ["MigrationBatchProfile", "Move", "MoveOutcome",
           "BatchResult", "TransactionalMigrationExecutor"]


@dataclasses.dataclass(frozen=True)
class MigrationBatchProfile:
    """Impairment + hardening knobs for the migration command path.

    Parameters
    ----------
    loss_probability:
        Chance one ``migrate`` command never reaches the hypervisor
        (detected by ack timeout, then retried).
    mid_copy_failure_probability:
        Chance a delivered migration dies partway through pre-copy
        (network glitch, hypervisor restart); the partial copy is
        discarded, placement untouched, and the move retried.
    latency_s:
        Transport latency per delivery attempt.
    max_retries:
        Re-deliveries after the first attempt.
    backoff_base_s / backoff_cap_s:
        Decorrelated-jitter backoff bounds between attempts (see
        :meth:`TransactionalMigrationExecutor._backoff`); zero base
        retries immediately.
    """

    loss_probability: float = 0.0
    mid_copy_failure_probability: float = 0.0
    latency_s: float = 0.0
    max_retries: int = 2
    backoff_base_s: float = 10.0
    backoff_cap_s: float = 120.0

    def __post_init__(self):
        for p in (self.loss_probability,
                  self.mid_copy_failure_probability):
            if not 0.0 <= p < 1.0:
                raise ValueError("probabilities must be in [0, 1)")
        if self.latency_s < 0 or self.backoff_base_s < 0:
            raise ValueError("timings cannot be negative")
        if self.backoff_cap_s < self.backoff_base_s:
            raise ValueError("backoff cap below base")
        if self.max_retries < 0:
            raise ValueError("max retries cannot be negative")

    @property
    def perfect(self) -> bool:
        """Every command lands instantly; only host faults can abort."""
        return (self.loss_probability == 0.0
                and self.mid_copy_failure_probability == 0.0
                and self.latency_s == 0.0)


class Move(typing.NamedTuple):
    """One planned migration, by name (names survive replanning)."""

    vm: str
    source: str
    destination: str


@dataclasses.dataclass
class MoveOutcome:
    """What actually happened to one planned move."""

    move: Move
    committed: bool = False
    attempts: int = 0
    lost_deliveries: int = 0
    mid_copy_failures: int = 0
    #: Terminal failure reason (``None`` while committed).
    reason: str | None = None


@dataclasses.dataclass
class BatchResult:
    """Transaction outcome: committed entirely, or rolled back."""

    committed: bool
    outcomes: list[MoveOutcome]
    #: Moves undone after the batch aborted (in rollback order).
    rollbacks: list[Move] = dataclasses.field(default_factory=list)
    #: Rollbacks that themselves failed — divergence for the
    #: reconciler to re-plan around.
    rollback_failures: list[Move] = dataclasses.field(default_factory=list)

    @property
    def moves_committed(self) -> int:
        return sum(1 for o in self.outcomes if o.committed)

    @property
    def clean(self) -> bool:
        """Either fully applied or fully undone."""
        return self.committed or (not self.rollback_failures
                                  and self.moves_committed
                                  == len(self.rollbacks))


class TransactionalMigrationExecutor:
    """Run migration batches with retry, abort, and rollback."""

    def __init__(self, env: Environment,
                 migrations: MigrationManager | None = None,
                 profile: MigrationBatchProfile | None = None,
                 streams: RandomStreams | None = None):
        self.env = env
        self.migrations = migrations or MigrationManager(
            env, max_concurrent=1)
        self.profile = profile or MigrationBatchProfile()
        self._rng = None
        self._backoff_prev = 0.0
        if not self.profile.perfect:
            streams = streams or RandomStreams(0)
            self._rng = streams.get("placement.migration")
        self.batches: list[BatchResult] = []

    # ------------------------------------------------------------------
    # Backoff (decorrelated jitter — retries never march in lockstep)
    # ------------------------------------------------------------------
    def _backoff(self) -> float:
        base = self.profile.backoff_base_s
        if base == 0.0:
            return 0.0
        prev = max(self._backoff_prev, base)
        sleep = min(self.profile.backoff_cap_s,
                    float(self._rng.uniform(base, prev * 3.0)))
        self._backoff_prev = sleep
        return sleep

    # ------------------------------------------------------------------
    # Single move (process generator)
    # ------------------------------------------------------------------
    def _execute_move(self, vm: VirtualMachine, destination: VMHost,
                      outcome: MoveOutcome):
        profile = self.profile
        rng = self._rng
        manager = self.migrations
        max_attempts = 1 + profile.max_retries
        while outcome.attempts < max_attempts:
            outcome.attempts += 1
            if profile.latency_s > 0:
                yield self.env.timeout(profile.latency_s)
            if vm.host is destination:
                outcome.committed = True  # duplicate delivery: no-op
                return
            if vm.host is None:
                outcome.reason = "vm-unplaced"
                return
            if rng is not None and rng.random() < profile.loss_probability:
                outcome.lost_deliveries += 1
                if outcome.attempts < max_attempts:
                    yield self.env.timeout(self._backoff())
                continue
            if (rng is not None and rng.random()
                    < profile.mid_copy_failure_probability):
                # The copy dies partway: time was spent, nothing moved.
                partial = rng.uniform(
                    0.0, manager.cost.duration_s(vm.memory_gb))
                yield self.env.timeout(partial)
                outcome.mid_copy_failures += 1
                if outcome.attempts < max_attempts:
                    yield self.env.timeout(self._backoff())
                continue
            before_aborts = len(manager.aborts)
            yield self.env.process(manager.migrate(vm, destination))
            if vm.host is destination:
                outcome.committed = True
                return
            # The hypervisor aborted (endpoint fault / superseded):
            # retrying the same move cannot help.
            if len(manager.aborts) > before_aborts:
                outcome.reason = manager.aborts[-1].reason
            else:  # pragma: no cover - defensive
                outcome.reason = "unknown-abort"
            return
        outcome.reason = "retries-exhausted"

    # ------------------------------------------------------------------
    # Batch (process generator)
    # ------------------------------------------------------------------
    def execute(self, moves: typing.Sequence[Move],
                vms: typing.Mapping[str, VirtualMachine],
                hosts: typing.Mapping[str, VMHost],
                result_slot: list | None = None):
        """Process generator: run ``moves`` as one transaction.

        Appends the :class:`BatchResult` to ``self.batches`` (and to
        ``result_slot`` if given, for callers that need the result
        from inside a yielded sub-process).
        """
        tracer = self.env.tracer
        outcomes = [MoveOutcome(m) for m in moves]
        result = BatchResult(committed=True, outcomes=outcomes)
        undo: list[Move] = []
        for outcome in outcomes:
            move = outcome.move
            vm = vms[move.vm]
            destination = hosts[move.destination]
            origin = vm.host
            yield from self._execute_move(vm, destination, outcome)
            if tracer is not None:
                tracer.event(
                    "placement.migrate", "actuation", vm=move.vm,
                    source=move.source, destination=move.destination,
                    committed=outcome.committed,
                    attempts=outcome.attempts, reason=outcome.reason)
            if outcome.committed and origin is not None:
                undo.append(Move(move.vm, move.destination, origin.name))
            elif not outcome.committed:
                result.committed = False
                break
        if not result.committed:
            # Roll the partial batch back, newest move first, so the
            # fleet returns to the placement the plan started from.
            for back in reversed(undo):
                vm = vms[back.vm]
                outcome = MoveOutcome(back)
                yield from self._execute_move(vm, hosts[back.destination],
                                              outcome)
                if outcome.committed:
                    result.rollbacks.append(back)
                else:
                    result.rollback_failures.append(back)
                if tracer is not None:
                    tracer.event(
                        "placement.rollback", "actuation", vm=back.vm,
                        destination=back.destination,
                        committed=outcome.committed,
                        reason=outcome.reason)
        self.batches.append(result)
        if result_slot is not None:
            result_slot.append(result)
        if tracer is not None:
            tracer.event("placement.batch", "actuation",
                         moves=len(outcomes),
                         committed=result.committed,
                         rollbacks=len(result.rollbacks),
                         rollback_failures=len(result.rollback_failures))
        return result
