"""Interval demand model: each VM's CPU demand as ``[uc - ur, uc + ur]``.

The consolidation layer never knows next hour's demand exactly — it
knows a *center* estimate and how far reality has strayed from it.
:class:`UncertainDemand` holds both as numpy columns so feasibility
checks vectorize, and the builders derive the interval from the same
diurnal profiles the rest of the repo simulates: the center is the
mid-range of the VM's demand over the upcoming planning window and the
radius is the half-range (plus an optional estimator-noise margin), so
a longer window or a spikier profile honestly widens the uncertainty
the packer must absorb.
"""

from __future__ import annotations

import typing

import numpy as np

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.vm import VirtualMachine

__all__ = ["UncertainDemand"]


class UncertainDemand:
    """Per-VM uncertain CPU demand intervals as numpy columns.

    Parameters
    ----------
    center:
        Nominal (expected) demand per VM, ``uc``.
    radius:
        Maximum credible deviation per VM, ``ur >= 0``; realized
        demand lives in ``[uc - ur, uc + ur]``.
    names:
        Optional per-VM identifiers (defaults to ``vm<i>``).
    """

    def __init__(self, center: typing.Sequence[float],
                 radius: typing.Sequence[float],
                 names: typing.Sequence[str] | None = None):
        self.center = np.asarray(center, dtype=float)
        self.radius = np.asarray(radius, dtype=float)
        if self.center.ndim != 1 or self.center.shape != self.radius.shape:
            raise ValueError("center and radius must be equal-length 1-D")
        if (self.center < 0).any():
            raise ValueError("demand centers cannot be negative")
        if (self.radius < 0).any():
            raise ValueError("demand radii cannot be negative")
        if names is None:
            names = [f"vm{i}" for i in range(len(self.center))]
        if len(names) != len(self.center):
            raise ValueError("one name per VM required")
        self.names = list(names)
        self.index = {name: i for i, name in enumerate(self.names)}

    def __len__(self) -> int:
        return len(self.center)

    @property
    def worst_case(self) -> np.ndarray:
        """Upper interval edge ``uc + ur`` per VM."""
        return self.center + self.radius

    def realize(self, deviations: np.ndarray) -> np.ndarray:
        """Realized demand for deviation draws in ``[-1, 1]``.

        ``deviations`` may be ``(n_vms,)`` or ``(trials, n_vms)``;
        each entry scales that VM's radius.
        """
        deviations = np.asarray(deviations, dtype=float)
        if deviations.shape[-1] != len(self):
            raise ValueError("one deviation per VM required")
        return self.center + self.radius * deviations

    @classmethod
    def from_vms(cls, vms: "typing.Sequence[VirtualMachine]",
                 t0_s: float, horizon_s: float = 3_600.0,
                 samples: int = 8,
                 noise_fraction: float = 0.0) -> "UncertainDemand":
        """Interval over the planning window ``[t0, t0 + horizon]``.

        Samples each VM's diurnal demand across the window; the center
        is the mid-range and the radius the half-range, widened by
        ``noise_fraction`` of the center for estimator error.  A flat
        profile with zero noise collapses to a point estimate — the
        deterministic packers' world view, recovered exactly.
        """
        if horizon_s <= 0:
            raise ValueError("horizon must be positive")
        if samples < 2:
            raise ValueError("need at least two samples")
        if noise_fraction < 0:
            raise ValueError("noise fraction cannot be negative")
        times = np.linspace(t0_s, t0_s + horizon_s, samples)
        centers, radii, names = [], [], []
        for vm in vms:
            demand = np.array([vm.demand_at(t) for t in times])
            lo, hi = float(demand.min()), float(demand.max())
            center = 0.5 * (lo + hi)
            radius = 0.5 * (hi - lo) + noise_fraction * center
            centers.append(center)
            radii.append(radius)
            names.append(vm.name)
        return cls(centers, radii, names)
