"""Γ-robust first-fit-decreasing packing with vectorized feasibility.

The Bertsimas–Sim cardinality-constrained uncertainty model, applied
to bin packing: a host holding residents ``R`` is feasible when

    sum(center[R]) + (sum of the Γ largest radius[R])  <=  capacity

— the packing survives *any* Γ residents spiking to their interval
edge simultaneously.  ``Γ = 0`` recovers naive packing on point
estimates; ``Γ >= len(R)`` recovers full worst-case (peak-sum)
packing.  The sweep between the two is the overload-probability vs.
servers-freed trade-off EXP-ROBUSTPACK charts.

The packer is a scalable first-fit(-decreasing) heuristic.  Per-host
state lives in numpy columns (center sum, top-Γ radius sum, the
smallest retained top radius), so the feasibility test for one VM
against a block of hosts is a handful of array operations; blocks
whose best-case slack cannot admit the VM are skipped wholesale via a
per-block slack index maintained incrementally.  Host capacities come
from plain arrays, a :class:`~repro.cluster.vm.VMHost` pool, or a
:class:`~repro.fleet.plant.VectorFleet`'s capacity column — the same
code path either way, which is what lets consolidation plans be
computed directly against the vector plant's structure-of-arrays
state.
"""

from __future__ import annotations

import heapq
import typing

import numpy as np

from repro.placement.uncertain import UncertainDemand

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.vm import VMHost
    from repro.fleet.plant import VectorFleet

__all__ = ["GammaRobustPacker", "PackResult", "overload_probability"]

_EPS = 1e-12


class PackResult:
    """Outcome of one packing pass.

    ``assignment[i]`` is the host row the ``i``-th VM landed on, or
    ``-1`` when no host could take it (reported in ``unplaced``).
    """

    def __init__(self, demand: UncertainDemand, assignment: np.ndarray,
                 capacities: np.ndarray, gamma: int):
        self.demand = demand
        self.assignment = assignment
        self.capacities = capacities
        self.gamma = int(gamma)

    @property
    def n_hosts(self) -> int:
        return len(self.capacities)

    @property
    def hosts_used(self) -> int:
        placed = self.assignment[self.assignment >= 0]
        return int(np.unique(placed).size)

    @property
    def servers_freed(self) -> int:
        """Hosts left entirely empty by the packing."""
        return self.n_hosts - self.hosts_used

    @property
    def unplaced(self) -> list[str]:
        return [self.demand.names[i]
                for i in np.flatnonzero(self.assignment < 0)]

    def residents(self, host: int) -> list[int]:
        """VM rows assigned to ``host``."""
        return np.flatnonzero(self.assignment == host).tolist()

    def robust_load(self, host: int) -> float:
        """Center sum plus the Γ largest radii on ``host``."""
        rows = self.assignment == host
        radii = np.sort(self.demand.radius[rows])[::-1]
        return float(self.demand.center[rows].sum()
                     + radii[:self.gamma].sum())

    def as_mapping(self) -> dict[str, int]:
        """``{vm name: host row}`` for placed VMs."""
        return {name: int(h) for name, h in
                zip(self.demand.names, self.assignment) if h >= 0}


class GammaRobustPacker:
    """First-fit(-decreasing) packing under the Γ-robust constraint.

    Parameters
    ----------
    capacities:
        Per-host CPU capacity column.
    gamma:
        Robustness budget: how many residents may spike to their
        interval edge simultaneously without overload.
    fill_limit:
        Fraction of capacity the packer may fill (extra headroom on
        top of the robust term).
    block:
        Hosts scanned per vectorized feasibility pass; blocks whose
        maximum slack cannot admit the VM are skipped in O(1).
    """

    def __init__(self, capacities: typing.Sequence[float],
                 gamma: int = 1, fill_limit: float = 1.0,
                 block: int = 1_024):
        self.capacities = np.asarray(capacities, dtype=float)
        if self.capacities.ndim != 1 or len(self.capacities) == 0:
            raise ValueError("need a 1-D, non-empty capacity column")
        if (self.capacities <= 0).any():
            raise ValueError("capacities must be positive")
        if gamma < 0:
            raise ValueError("gamma cannot be negative")
        if not 0.0 < fill_limit <= 1.0:
            raise ValueError("fill limit must be in (0, 1]")
        if block < 1:
            raise ValueError("block must be positive")
        self.gamma = int(gamma)
        self.fill_limit = float(fill_limit)
        self.block = int(block)

    # ------------------------------------------------------------------
    # Constructors from live plant state
    # ------------------------------------------------------------------
    @classmethod
    def for_hosts(cls, hosts: "typing.Sequence[VMHost]",
                  gamma: int = 1, **kwargs) -> "GammaRobustPacker":
        """Packer over a VMHost pool; failed hosts get zero-ish
        capacity so nothing is ever planned onto them."""
        caps = [float(h.capacity[0]) if not h.failed else _EPS
                for h in hosts]
        return cls(caps, gamma=gamma, **kwargs)

    @classmethod
    def for_fleet(cls, fleet: "VectorFleet", gamma: int = 1,
                  usable: np.ndarray | None = None,
                  **kwargs) -> "GammaRobustPacker":
        """Packer straight off a VectorFleet's capacity column.

        ``usable`` is an optional boolean row mask (e.g. "not FAILED");
        excluded rows keep their index but cannot admit any VM, so
        ``PackResult.assignment`` stays aligned with fleet rows.
        """
        caps = np.asarray(fleet.capacity[:fleet.n_claimed], dtype=float)
        caps = caps.copy()
        if usable is not None:
            usable = np.asarray(usable, dtype=bool)
            if usable.shape != caps.shape:
                raise ValueError("usable mask must match claimed rows")
            caps[~usable] = _EPS
        return cls(caps, gamma=gamma, **kwargs)

    # ------------------------------------------------------------------
    # Packing
    # ------------------------------------------------------------------
    def pack(self, demand: UncertainDemand,
             decreasing: bool = True,
             pinned: dict[int, int] | None = None) -> PackResult:
        """Pack every VM; returns the assignment (−1 = unplaced).

        ``decreasing`` sorts VMs by worst-case demand first (FFD, the
        robust default); ``False`` keeps the given order (plain
        first-fit, the naive baseline).  ``pinned`` maps VM row →
        host row for VMs that must stay put (their load is charged to
        the host before anything else is placed).
        """
        n_vms = len(demand)
        n_hosts = len(self.capacities)
        gamma = self.gamma
        centers = demand.center
        radii = demand.radius
        budget = self.capacities * self.fill_limit

        # Per-host running state.
        center_sum = np.zeros(n_hosts)
        topk_sum = np.zeros(n_hosts)          # sum of the Γ largest radii
        topk_min = np.full(n_hosts, np.inf)   # smallest retained radius
        topk_count = np.zeros(n_hosts, dtype=np.int64)
        heaps: dict[int, list[float]] = {}
        # Block slack index: an upper bound on the center demand any
        # host in the block could still accept.
        block = self.block
        n_blocks = -(-n_hosts // block)
        slack = budget - center_sum - topk_sum
        block_max = np.array([slack[b * block:(b + 1) * block].max()
                              for b in range(n_blocks)])

        assignment = np.full(n_vms, -1, dtype=np.int64)

        def admit(i: int, j: int) -> None:
            assignment[i] = j
            center_sum[j] += centers[i]
            ur = float(radii[i])
            if gamma > 0:
                heap = heaps.setdefault(j, [])
                if len(heap) < gamma:
                    heapq.heappush(heap, ur)
                    topk_sum[j] += ur
                elif ur > heap[0]:
                    topk_sum[j] += ur - heapq.heapreplace(heap, ur)
                topk_count[j] = len(heap)
                topk_min[j] = heap[0] if len(heap) == gamma else np.inf
            b = j // block
            lo = b * block
            s = budget[lo:lo + block] - center_sum[lo:lo + block] \
                - topk_sum[lo:lo + block]
            block_max[b] = s.max()

        if pinned:
            for i, j in pinned.items():
                if not (0 <= j < n_hosts):
                    raise ValueError(f"pinned host {j} out of range")
                admit(i, j)

        order = np.arange(n_vms)
        if decreasing:
            # Stable sort so equal worst cases keep input order.
            order = np.argsort(-demand.worst_case, kind="stable")
        for i in order.tolist():
            if assignment[i] >= 0:
                continue  # pinned
            uc = float(centers[i])
            ur = float(radii[i])
            placed = False
            for b in np.flatnonzero(block_max >= uc - _EPS).tolist():
                lo = b * block
                hi = min(lo + block, n_hosts)
                if gamma == 0:
                    delta = 0.0
                else:
                    delta = np.where(
                        topk_count[lo:hi] < gamma, ur,
                        np.maximum(ur - topk_min[lo:hi], 0.0))
                load = (center_sum[lo:hi] + uc
                        + topk_sum[lo:hi] + delta)
                feasible = load <= budget[lo:hi] + _EPS
                if feasible.any():
                    admit(i, lo + int(np.argmax(feasible)))
                    placed = True
                    break
            if not placed:
                assignment[i] = -1
        return PackResult(demand, assignment, self.capacities, gamma)

    def fits(self, result: PackResult) -> bool:
        """Re-check a finished packing against the robust constraint
        (the slow, obviously-correct validator tests use)."""
        for j in range(len(self.capacities)):
            rows = result.assignment == j
            if not rows.any():
                continue
            if result.robust_load(j) > \
                    self.capacities[j] * self.fill_limit + 1e-9:
                return False
        return True


def overload_probability(result: PackResult,
                         spike_probability: float = 0.25,
                         trials: int = 400,
                         rng: np.random.Generator | None = None,
                         ) -> float:
    """Monte-Carlo per-host overload probability of a packing.

    Each trial flips an independent coin per VM: with
    ``spike_probability`` the VM runs at its interval edge
    ``uc + ur``, otherwise at its center.  A used host overloads when
    its realized sum exceeds capacity.  Returns the fraction of
    (trial, used-host) pairs that overloaded — the probability a given
    consolidated host blows through capacity in a given interval.

    Passing the same ``rng`` state across packings gives common random
    numbers, so sweeps over Γ compare policies on identical demand
    realizations.
    """
    if not 0.0 <= spike_probability <= 1.0:
        raise ValueError("spike probability must be in [0, 1]")
    if trials < 1:
        raise ValueError("need at least one trial")
    rng = rng or np.random.default_rng(0)
    demand = result.demand
    placed = result.assignment >= 0
    hosts = result.assignment[placed]
    if hosts.size == 0:
        return 0.0
    used = np.unique(hosts)
    centers = demand.center[placed]
    radii = demand.radius[placed]
    caps = result.capacities
    n_hosts = len(caps)
    overloads = 0
    for _ in range(trials):
        spikes = rng.random(centers.size) < spike_probability
        realized = centers + radii * spikes
        loads = np.bincount(hosts, weights=realized, minlength=n_hosts)
        overloads += int(np.count_nonzero(
            loads[used] > caps[used] + 1e-9))
    return overloads / (trials * used.size)
