"""Uncertainty-aware consolidation: plan robustly, execute
transactionally, reconcile honestly.

:class:`RobustConsolidationManager` closes the loop the paper's §4.4
leaves open: consolidation decisions act on *forecast* demand through
*slow, fallible* actuators.  Each cycle:

1. **evacuates** VMs stranded on failed hosts (restart placements —
   the host is down, there is nothing live to migrate);
2. **reconciles** intended vs. actual placement: divergence left by a
   lost command, a failed rollback, or an evacuation is *adopted* as
   the new baseline and re-planned, never blindly re-issued — the
   anti-double-move rule;
3. builds :class:`~repro.placement.uncertain.UncertainDemand` over the
   next planning window and repacks it from scratch with the Γ-robust
   first-fit-decreasing heuristic (consolidation *wants* to empty
   lightly-loaded hosts, so nothing is pinned in place);
4. diffs plan against reality into a move batch and hands it to the
   :class:`~repro.placement.txn.TransactionalMigrationExecutor` —
   commit entirely or roll back to the placement the cycle started
   from;
5. stamps the whole story (observations in, migrations/rollbacks out,
   plan summary) into the :class:`~repro.obs.audit.AuditTrail`.

The invariants the chaos tests lean on: no VM is ever *planned onto*
or *left resident on* a failed host once a cycle has run, VM count is
conserved through any storm, and after a final ``reconcile()`` the
intended ledger matches reality exactly.
"""

from __future__ import annotations

import typing

from repro.cluster.migration import MigrationManager
from repro.cluster.vm import VMHost, VirtualMachine
from repro.obs.audit import AuditTrail
from repro.placement.robust import GammaRobustPacker
from repro.placement.txn import (
    BatchResult,
    MigrationBatchProfile,
    Move,
    TransactionalMigrationExecutor,
)
from repro.placement.uncertain import UncertainDemand
from repro.sim import Environment, RandomStreams

__all__ = ["RobustConsolidationManager"]


class RobustConsolidationManager:
    """Periodic Γ-robust consolidation over a live VMHost pool.

    Parameters
    ----------
    env, hosts, vms:
        Simulation clock and the pool under management (``vms`` is the
        closed population whose count is conserved).
    gamma:
        Robustness budget handed to the packer.
    period_s / horizon_s:
        Cycle cadence and demand-forecast window (horizon defaults to
        the period — plan for exactly the interval the plan must
        survive).
    fill_limit, noise_fraction:
        Packer headroom and estimator-noise margin.
    profile:
        Command-path impairments for the executor (default: perfect).
    migrations:
        Shared :class:`MigrationManager` (default: a private one with
        one slot — batches are transactions, not floods).
    audit:
        Optional :class:`AuditTrail`; every cycle becomes one decision
        record with the batch's actuation events attached.
    max_moves_per_cycle:
        Cap on batch size (long batches hold the transaction open
        longer, so more exposure to faults; ``None`` = unlimited).
    """

    def __init__(self, env: Environment,
                 hosts: typing.Sequence[VMHost],
                 vms: typing.Sequence[VirtualMachine],
                 gamma: int = 1,
                 period_s: float = 3_600.0,
                 horizon_s: float | None = None,
                 fill_limit: float = 1.0,
                 noise_fraction: float = 0.0,
                 profile: MigrationBatchProfile | None = None,
                 migrations: MigrationManager | None = None,
                 streams: RandomStreams | None = None,
                 audit: AuditTrail | None = None,
                 max_moves_per_cycle: int | None = None):
        if period_s <= 0:
            raise ValueError("period must be positive")
        if max_moves_per_cycle is not None and max_moves_per_cycle < 1:
            raise ValueError("move cap must be positive")
        self.env = env
        self.hosts = list(hosts)
        self.vms = list(vms)
        self.gamma = int(gamma)
        self.period_s = float(period_s)
        self.horizon_s = float(horizon_s if horizon_s is not None
                               else period_s)
        self.fill_limit = float(fill_limit)
        self.noise_fraction = float(noise_fraction)
        self.max_moves_per_cycle = max_moves_per_cycle
        self.audit = audit
        self.executor = TransactionalMigrationExecutor(
            env, migrations=migrations,
            profile=profile or MigrationBatchProfile(),
            streams=streams)
        self.host_index = {h.name: h for h in self.hosts}
        self.vm_index = {vm.name: vm for vm in self.vms}
        #: The placement the manager believes it has established:
        #: ``{vm name: host name}``.  Reconciliation repairs this from
        #: reality rather than forcing reality back to it.
        self.intended: dict[str, str] = {
            vm.name: vm.host.name for vm in self.vms
            if vm.host is not None}
        self.cycles = 0
        self.evacuations = 0
        #: VMs evacuation could not re-place anywhere (retried next
        #: cycle; counted, never silently dropped).
        self.stranded: list[str] = []
        self.divergences_repaired = 0
        self.replans = 0

    # ------------------------------------------------------------------
    # State queries (the invariants chaos tests assert)
    # ------------------------------------------------------------------
    def vms_on_failed_hosts(self) -> list[str]:
        """VMs currently resident on a failed host (down with it)."""
        return [vm.name for vm in self.vms
                if vm.host is not None and vm.host.failed]

    def divergence(self) -> list[str]:
        """VMs whose actual host differs from the intended ledger."""
        out = []
        for vm in self.vms:
            actual = vm.host.name if vm.host is not None else None
            if self.intended.get(vm.name) != actual:
                out.append(vm.name)
        return out

    def reconcile(self) -> int:
        """Adopt actual placement as the new intent; return the number
        of divergences repaired.

        This is deliberately *not* "re-issue the moves that didn't
        land": the world moved on (hosts failed, rollbacks half-ran),
        so the safe repair is to accept reality and let the next
        ``cycle`` re-plan from it — a diverged VM is re-*planned*,
        never double-moved.
        """
        diverged = self.divergence()
        if diverged:
            self.intended = {vm.name: vm.host.name for vm in self.vms
                             if vm.host is not None}
            self.divergences_repaired += len(diverged)
            self.replans += 1
        return len(diverged)

    # ------------------------------------------------------------------
    # Failure evacuation (restart placements, not migrations)
    # ------------------------------------------------------------------
    def evacuate_failed(self) -> int:
        """Re-place VMs that are down with their failed host.

        A failed host has nothing live to pre-copy, so this is a
        restart placement onto a healthy host with robust headroom;
        VMs no healthy host can absorb stay on ``stranded`` and are
        retried next cycle.
        """
        victims = [vm for vm in self.vms
                   if vm.host is not None and vm.host.failed]
        victims += [self.vm_index[name] for name in self.stranded
                    if self.vm_index[name].host is None]
        if not victims:
            return 0
        self.stranded = []
        moved = 0
        tracer = self.env.tracer
        for vm in victims:
            source = vm.host
            if source is not None:
                source.evict(vm)
            target = self._restart_target(vm)
            if target is None:
                self.stranded.append(vm.name)
                self.intended.pop(vm.name, None)
                continue
            target.place(vm)
            self.intended[vm.name] = target.name
            self.evacuations += 1
            moved += 1
            if tracer is not None:
                tracer.event(
                    "placement.evacuate", "actuation", vm=vm.name,
                    source=source.name if source else None,
                    destination=target.name)
        return moved

    def _restart_target(self, vm: VirtualMachine) -> VMHost | None:
        """First healthy host that fits ``vm`` with robust headroom."""
        demand = UncertainDemand.from_vms(
            [vm], self.env.now, self.horizon_s,
            noise_fraction=self.noise_fraction)
        for host in self.hosts:
            if host.failed:
                continue
            resident = UncertainDemand.from_vms(
                host.vms, self.env.now, self.horizon_s,
                noise_fraction=self.noise_fraction)
            radii = sorted(resident.radius.tolist() +
                           [float(demand.radius[0])], reverse=True)
            load = (float(resident.center.sum()) + float(demand.center[0])
                    + sum(radii[:self.gamma]))
            budget = float(host.capacity[0]) * self.fill_limit
            if load <= budget + 1e-12:
                return host
        return None

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def plan(self) -> tuple[list[Move], "UncertainDemand", int]:
        """Diff a fresh Γ-robust packing against current placement.

        Returns ``(moves, demand, hosts_used)``.  VMs the packing
        leaves unplaced stay where they are (never evict into thin
        air); VMs currently unplaced but packable come back as moves
        with an empty source (handled as restart placements).
        """
        demand = UncertainDemand.from_vms(
            self.vms, self.env.now, self.horizon_s,
            noise_fraction=self.noise_fraction)
        packer = GammaRobustPacker.for_hosts(
            self.hosts, gamma=self.gamma, fill_limit=self.fill_limit)
        result = packer.pack(demand)
        moves: list[Move] = []
        for i, vm in enumerate(self.vms):
            j = int(result.assignment[i])
            if j < 0:
                continue
            target = self.hosts[j]
            if vm.host is target:
                continue
            moves.append(Move(vm.name,
                              vm.host.name if vm.host else "",
                              target.name))
        if self.max_moves_per_cycle is not None:
            moves = moves[:self.max_moves_per_cycle]
        return moves, demand, result.hosts_used

    # ------------------------------------------------------------------
    # One decision cycle (process generator)
    # ------------------------------------------------------------------
    def cycle(self):
        """Process generator: reconcile, plan, execute one batch."""
        self.cycles += 1
        audit = self.audit
        if audit is not None:
            audit.begin(self.env.now)
        evacuated = self.evacuate_failed()
        repaired = self.reconcile()
        moves, demand, hosts_used = self.plan()
        if audit is not None:
            audit.observe("placement.demand_center",
                          float(demand.center.sum()),
                          self.env.now, 0.0)
            audit.observe("placement.demand_radius",
                          float(demand.radius.sum()),
                          self.env.now, 0.0)
            audit.observe("placement.divergence_repaired", repaired,
                          self.env.now, 0.0)
        migrations = [m for m in moves if m.source]
        restarts = [m for m in moves if not m.source]
        for move in restarts:
            # Stranded VM with a planned slot: direct restart placement.
            host = self.host_index[move.destination]
            if not host.failed:
                host.place(self.vm_index[move.vm])
                self.intended[move.vm] = move.destination
                if move.vm in self.stranded:
                    self.stranded.remove(move.vm)
        result: BatchResult | None = None
        if migrations:
            slot: list[BatchResult] = []
            yield from self.executor.execute(
                migrations, self.vm_index, self.host_index,
                result_slot=slot)
            result = slot[0]
            if result.committed:
                for move in migrations:
                    self.intended[move.vm] = move.destination
            # A rolled-back batch leaves intent at the pre-batch
            # placement; rollback *failures* surface as divergence and
            # are re-planned next cycle by reconcile().
        if audit is not None:
            audit.commit(
                gamma=self.gamma,
                hosts_used=hosts_used,
                moves_planned=len(moves),
                evacuated=evacuated,
                batch_committed=result.committed if result else True,
                rollback_failures=(len(result.rollback_failures)
                                   if result else 0))
        return result

    def run(self, cycles: int | None = None):
        """Process generator: run consolidation cycles forever (or
        ``cycles`` times), one per period."""
        done = 0
        while cycles is None or done < cycles:
            yield self.env.timeout(self.period_s)
            yield from self.cycle()
            done += 1
