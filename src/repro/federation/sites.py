"""Site-side runtime of the federation: one full plant per region.

A federation site is a whole :class:`~repro.datacenter.CoSimulation`
(optionally cut into in-process zone shards — the site worker is a
daemon process and cannot spawn grandchildren) that accepts a routed
demand level each macro period and reports back one compact
:class:`SiteSummary`.  Everything that crosses the process boundary —
:class:`SiteConfig` in, :class:`SiteSummary` out — is picklable and
small; the plant itself never leaves the worker.

The summary's capacity field is the *healthy* capacity (installed
minus failed servers), the same column the zone-sharded plant
exchanges: what the site could serve once its manager wakes the
fleet, not what happens to be awake.  A site that lost half its fleet
to a blackout therefore reports the loss at the next sync point even
though its manager has also put the survivors to sleep.

Recovery is deterministic sim-time behaviour: with ``auto_repair``
(default), a site whose fault schedule has gone quiet repairs its
blackout-failed servers at the first subsequent sync boundary —
modelling the ops crew walking the aisles once the utility feed is
back — so the router's recovery hysteresis has something real to
re-admit.
"""

from __future__ import annotations

import copy
import dataclasses
import math
import typing

from repro.cluster.server import ServerState
from repro.core.faults import FaultSchedule
from repro.core.forecast import ReactiveForecaster
from repro.datacenter.cosim import CoSimResult, CoSimulation
from repro.datacenter.sharded import (
    merge_results,
    partition_faults,
    partition_spec,
)
from repro.datacenter.spec import DataCenterSpec

__all__ = ["SiteConfig", "SiteSummary", "SiteRuntime",
           "SUMMARY_LAYOUT", "SUMMARY_SLOTS", "pack_summary",
           "unpack_summary"]


@dataclasses.dataclass(frozen=True)
class SiteConfig:
    """Everything a worker needs to build one site (picklable).

    ``fault_engine_kwargs`` passes through to the
    :class:`~repro.core.faults.FaultDomainEngine` — the outage
    scenarios force ``generator_start_probability=0.0`` so a utility
    outage deterministically rides the battery into blackout instead
    of drawing a generator start.

    ``manager_kwargs`` passes through to the site's
    :class:`~repro.core.manager.MacroResourceManager`.  Unless it
    names a ``forecaster``, federation sites get a
    :class:`~repro.core.forecast.ReactiveForecaster`: the demand a
    site sees is the router's assignment, held constant between sync
    points, so the default daily-seasonal Holt-Winters is the wrong
    model — its cold seasonal slots make the forecast collapse for
    ten minutes out of every thirty after a failover step, and the
    manager saws the fleet along with it.  Persistence is exact for a
    step held one period.
    """

    name: str
    spec: DataCenterSpec
    shards: int = 1
    managed: bool = True
    fault_schedule: FaultSchedule | None = None
    fault_engine_kwargs: typing.Mapping | None = None
    auto_repair: bool = True
    manager_kwargs: typing.Mapping | None = None

    def __post_init__(self):
        if self.shards < 1:
            raise ValueError("a site needs at least one shard")


class SiteSummary(typing.NamedTuple):
    """Per-period telemetry a site sends the global router."""

    site: str
    time_s: float
    #: Installed IT capacity (work units/s), the static denominator.
    installed_capacity: float
    #: Installed minus failed servers — what the site *could* serve.
    healthy_capacity: float
    #: Effective capacity of the currently awake fleet.
    awake_capacity: float
    on_battery: bool
    active_incidents: int
    failed_servers: int
    #: Energy-weighted PUE over the last macro period (NaN while the
    #: window has no IT energy, e.g. the very first period).
    window_pue: float
    #: Offered / shed work (unit-seconds) over the last macro period.
    window_offered: float
    window_shed: float


#: Float64 slots a summary occupies in a shared-memory lane: every
#: field except ``site`` (the supervisor knows which site it polls).
SUMMARY_SLOTS = 10

#: Fabric layout for one site worker's telemetry lane.
SUMMARY_LAYOUT = (("summary", SUMMARY_SLOTS),)


def pack_summary(summary: SiteSummary) -> list[float]:
    """Encode a summary as float64s for the shared-memory lane.

    Bools and counts round-trip exactly (they are small integers);
    the float fields are already float64, so the shm transport is
    bit-identical to pickling the tuple — NaN PUE included.
    """
    return [summary.time_s, summary.installed_capacity,
            summary.healthy_capacity, summary.awake_capacity,
            1.0 if summary.on_battery else 0.0,
            float(summary.active_incidents),
            float(summary.failed_servers), summary.window_pue,
            summary.window_offered, summary.window_shed]


def unpack_summary(site: str, vec) -> SiteSummary:
    """Decode :func:`pack_summary`'s lane payload back to a summary."""
    return SiteSummary(
        site=site, time_s=float(vec[0]),
        installed_capacity=float(vec[1]),
        healthy_capacity=float(vec[2]),
        awake_capacity=float(vec[3]),
        on_battery=bool(vec[4] != 0.0),
        active_incidents=int(vec[5]),
        failed_servers=int(vec[6]),
        window_pue=float(vec[7]),
        window_offered=float(vec[8]),
        window_shed=float(vec[9]))


class _Plant:
    """One co-simulation (a whole site, or one zone shard of it)."""

    def __init__(self, spec: DataCenterSpec, managed: bool,
                 fault_schedule: FaultSchedule | None,
                 fault_engine_kwargs: typing.Mapping | None,
                 manager_kwargs: typing.Mapping | None = None):
        self.level = 0.0  # routed demand, work units/s, set per period
        # Deep-copied so every plant owns its forecaster/risk-model
        # state — the in-process reference path must match the worker
        # path, where pickling copies them anyway.
        mk = copy.deepcopy(dict(manager_kwargs)) if manager_kwargs else {}
        mk.setdefault("forecaster", ReactiveForecaster())
        self.sim = CoSimulation(
            spec, lambda t: self.level, managed=managed,
            manager_kwargs=(mk if managed else None),
            fault_schedule=fault_schedule,
            fault_engine_kwargs=(dict(fault_engine_kwargs)
                                 if fault_engine_kwargs else None))
        self.start = self.sim.env.now

    def healthy_capacity(self) -> float:
        dc = self.sim.dc
        failed = dc.cluster.count_in(ServerState.FAILED)
        return (dc.spec.total_servers - failed) * dc.spec.server_capacity

    def auto_repair(self) -> None:
        """Repair failed servers once no incident is active.

        The fault engine's ``_clear`` restores the grid but leaves
        blackout victims FAILED; this is the deterministic ops-crew
        sweep that brings them back at the next sync boundary.
        """
        engine = self.sim.fault_engine
        if engine is None or engine.active_incidents():
            return
        for server in self.sim.dc.servers:
            if server.state is ServerState.FAILED:
                server.repair()

    def finish(self) -> tuple[CoSimResult, float, float]:
        end = self.sim.env.now
        result = self.sim.summarize(self.start, end)
        offered = self.sim.farm.offered_monitor.integral(self.start, end)
        shed = self.sim.farm.shed_monitor.integral(self.start, end)
        return result, offered, shed


class SiteRuntime:
    """Drives one site's plant(s) between federation sync points.

    With ``shards > 1`` the site runs as in-process zone shards (cut
    by the same :func:`~repro.datacenter.sharded.partition_spec` /
    :func:`~repro.datacenter.sharded.partition_faults` machinery) and
    the routed level is redistributed across them by healthy capacity
    at every sync point, exactly like the sharded plant's driver.
    """

    def __init__(self, cfg: SiteConfig):
        self.cfg = cfg
        if cfg.shards == 1:
            specs = [cfg.spec]
            faults: list[FaultSchedule | None] = [cfg.fault_schedule]
        else:
            specs = partition_spec(cfg.spec, cfg.shards)
            if cfg.fault_schedule is None:
                faults = [None] * len(specs)
            else:
                faults = list(partition_faults(cfg.spec, specs,
                                               cfg.fault_schedule))
        self.plants = [_Plant(spec, cfg.managed, sched,
                              cfg.fault_engine_kwargs,
                              cfg.manager_kwargs)
                       for spec, sched in zip(specs, faults)]
        starts = {p.start for p in self.plants}
        if len(starts) != 1:  # pragma: no cover - spec invariant
            raise RuntimeError(f"shards disagree on start: {starts}")
        self.now = starts.pop()
        self.installed = (cfg.spec.total_servers
                          * cfg.spec.server_capacity)

    def _summary(self, window_start: float) -> SiteSummary:
        healthy = 0.0
        awake = 0.0
        on_battery = False
        incidents = 0
        failed = 0
        it = 0.0
        facility = 0.0
        offered = 0.0
        shed = 0.0
        for plant in self.plants:
            healthy += plant.healthy_capacity()
            awake += plant.sim.dc.cluster.total_effective_capacity()
            engine = plant.sim.fault_engine
            if engine is not None:
                status = engine.status()
                on_battery = on_battery or status.on_battery
                incidents += len(status.active_incidents)
                failed += status.failed_servers
            else:
                failed += plant.sim.dc.cluster.count_in(
                    ServerState.FAILED)
            if window_start < self.now:
                pue = plant.sim.dc.pue
                it += pue.it_monitor.integral(window_start, self.now)
                facility += pue.total_facility_energy_j(
                    window_start, self.now)
                farm = plant.sim.farm
                offered += farm.offered_monitor.integral(
                    window_start, self.now)
                shed += farm.shed_monitor.integral(
                    window_start, self.now)
        return SiteSummary(
            site=self.cfg.name, time_s=self.now,
            installed_capacity=self.installed,
            healthy_capacity=healthy, awake_capacity=awake,
            on_battery=on_battery, active_incidents=incidents,
            failed_servers=failed,
            window_pue=(facility / it if it > 0.0 else math.nan),
            window_offered=offered, window_shed=shed)

    def ready(self) -> SiteSummary:
        """The pre-first-period summary (boot-time state)."""
        return self._summary(self.now)

    def advance(self, until: float, assigned_units: float) -> SiteSummary:
        """Serve ``assigned_units`` until ``until``; report back."""
        if until <= self.now:
            raise ValueError("advance target must move time forward")
        caps = [p.healthy_capacity() for p in self.plants]
        total = sum(caps)
        if total <= 0.0:
            caps = [p.sim.dc.spec.total_servers
                    * p.sim.dc.spec.server_capacity
                    for p in self.plants]
            total = sum(caps)
        window_start = self.now
        for plant, cap in zip(self.plants, caps):
            plant.level = assigned_units * cap / total
            plant.sim.env.run(until=until)
        if self.cfg.auto_repair:
            for plant in self.plants:
                plant.auto_repair()
        self.now = until
        return self._summary(window_start)

    def finish(self) -> tuple[CoSimResult, float, float]:
        """Merged site result plus its offered/shed integrals."""
        finished = [p.finish() for p in self.plants]
        if len(finished) == 1:
            return finished[0]
        duration = self.now - self.plants[0].start
        merged = merge_results(finished, duration)
        offered = sum(f[1] for f in finished)
        shed = sum(f[2] for f in finished)
        return merged, offered, shed


def _site_worker(conn, cfg: SiteConfig, shm_name: str | None = None) -> None:
    """Persistent pipe server: one :class:`SiteRuntime` per process.

    Same protocol shape as the zone-sharded plant's worker; the
    federation supervisor drives it through the shared
    :func:`~repro.datacenter.sharded.poll_recv` helper and replays the
    message log into a fresh worker after a crash.

    With ``shm_name``, each period's :class:`SiteSummary` is published
    to that fabric block's ``summary`` lane at the macro-period epoch
    and the pipe ``ok`` carries ``None``.  The parent→worker direction
    (the ``advance`` messages) deliberately stays on the pipe: that
    stream *is* the supervisor's replay log, and a respawned worker
    must be able to consume it with nothing but its config — epochs
    restart from 1 on each spawn, so the replayed periods rewrite the
    same lane slots deterministically.
    """
    block = None
    try:
        runtime = SiteRuntime(cfg)
        lane = None
        if shm_name is not None:
            from repro.datacenter.shm import FabricBlock
            block = FabricBlock.attach(shm_name, SUMMARY_LAYOUT)
            lane = block.lane("summary")
        conn.send(("ready", runtime.ready()))
        period = 0
        while True:
            msg = conn.recv()
            if msg[0] == "advance":
                period += 1
                summary = runtime.advance(msg[1], msg[2])
                if lane is not None:
                    lane.write(period, pack_summary(summary))
                    conn.send(("ok", None))
                else:
                    conn.send(("ok", summary))
            elif msg[0] == "finish":
                conn.send(("result", runtime.finish()))
                return
            else:  # pragma: no cover - protocol guard
                raise RuntimeError(f"unknown message {msg[0]!r}")
    except BaseException as exc:  # noqa: BLE001 - reported to parent
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except (BrokenPipeError, OSError):  # pragma: no cover
            pass
        raise
    finally:
        if block is not None:
            block.close()
        conn.close()
