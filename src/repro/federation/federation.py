"""Federated co-simulation: N plants, one router, crash-tolerant glue.

:class:`FederatedCoSimulation` is the top of the stack: each
federation site is a full plant (:mod:`repro.federation.sites`)
advancing in macro-period lockstep, the
:class:`~repro.federation.router.GlobalRouter` places regional demand
between periods, and — with ``workers=True`` — every site lives in its
own worker process behind a supervisor that makes worker death a
wall-time event instead of a correctness event.

Crash tolerance is log-structured replay, not state snapshotting: the
supervisor records every message it sent to a site worker (the
inter-period exchange state — a few floats per period).  When
:func:`~repro.datacenter.sharded.poll_recv` reports the worker dead or
hung, the supervisor respawns it from the picklable
:class:`~repro.federation.sites.SiteConfig`, replays the log
(discarding the replies it already consumed — the simulation is
deterministic, so they are bit-identical), and takes the reply to the
in-flight message.  A SIGKILL at any macro period therefore yields a
:class:`FederationResult` bit-identical to an uninterrupted run; the
restart count lives on the supervisor (:attr:`recoveries`), *not* in
the result, precisely because it is a wall-time fact.

Determinism contract: ``workers=False`` (everything in-process) is the
bit-identical reference for ``workers=True``, with or without worker
kills — the federation test asserts all three ways.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import signal
import typing

from repro.datacenter.cosim import CoSimResult
from repro.datacenter.sharded import ShardWorkerDied, poll_recv
from repro.datacenter.shm import FabricBlock, shm_available
from repro.sim import RandomStreams
from repro.workload.diurnal import DiurnalProfile

from repro.federation.router import (
    GlobalRouter,
    Region,
    RouteDecision,
    RouterConfig,
    SiteMeta,
)
from repro.federation.sites import (
    SUMMARY_LAYOUT,
    SiteConfig,
    SiteRuntime,
    SiteSummary,
    _site_worker,
    unpack_summary,
)

__all__ = ["FederationSite", "FederationResult",
           "FederatedCoSimulation"]


@dataclasses.dataclass(frozen=True)
class FederationSite:
    """One site: its plant config plus parent-side routing metadata."""

    config: SiteConfig
    meta: SiteMeta

    @property
    def name(self) -> str:
        return self.config.name


@dataclasses.dataclass
class FederationResult:
    """Deterministic summary of one federated run.

    Everything here is a function of simulation state only — restart
    counts and wall times are deliberately excluded so a run with
    worker crashes compares equal to a clean one.
    """

    duration_s: float
    site_results: dict[str, CoSimResult]
    #: Work ledger, all in unit-seconds of demand.
    offered_unit_s: float
    placed_unit_s: float
    router_shed_unit_s: float
    site_shed_unit_s: float
    served_fraction: float
    #: Merged plant energetics.
    it_energy_j: float
    facility_energy_j: float
    energy_weighted_pue: float
    #: Router ledger.
    routing_cost: float
    failovers: int
    transitions: tuple
    decisions: int

    @property
    def facility_kwh(self) -> float:
        return self.facility_energy_j / 3.6e6


class _LocalSiteHandle:
    """In-process site — the bit-identical reference path."""

    def __init__(self, cfg: SiteConfig, recv_deadline_s: float = 60.0,
                 max_restarts: int = 3):
        self.name = cfg.name
        self.runtime = SiteRuntime(cfg)
        self.ready_summary = self.runtime.ready()
        self.pid = None
        self.transport = "local"

    def advance(self, until: float, units: float) -> SiteSummary:
        return self.runtime.advance(until, units)

    def finish(self) -> tuple[CoSimResult, float, float]:
        return self.runtime.finish()

    def close(self) -> None:
        pass


class _SiteHandle:
    """A site worker process, supervised with restart-and-replay.

    The message log *is* the checkpoint: every ``advance`` the parent
    ever sent, in order.  ``request`` appends, sends, and receives
    through the shared :func:`poll_recv` deadline helper; any
    :class:`ShardWorkerDied` (crash, SIGKILL, hang past the deadline,
    broken pipe) triggers ``_recover``, which respawns the worker from
    ``cfg`` and replays the whole log to the current sync point.
    """

    def __init__(self, cfg: SiteConfig, recv_deadline_s: float = 60.0,
                 max_restarts: int = 3):
        self.cfg = cfg
        self.name = cfg.name
        self.recv_deadline_s = float(recv_deadline_s)
        self.max_restarts = int(max_restarts)
        self.restarts = 0
        self.log: list[tuple] = []
        self._fabric: FabricBlock | None = None
        self.transport = "pipe"
        self._spawn()

    # -- process lifecycle --------------------------------------------
    def _spawn(self) -> None:
        """Start (or restart) the worker, with a fresh fabric block.

        The worker-side summary lane is per-spawn state: a respawned
        worker attaches a brand-new block and replaying the log
        repopulates it from epoch 1, so stale telemetry from the dead
        incarnation can never satisfy a read.
        """
        ctx = multiprocessing.get_context()
        self.conn, child = ctx.Pipe()
        shm_name = None
        if shm_available():
            try:
                self._fabric = FabricBlock.create(SUMMARY_LAYOUT)
                shm_name = self._fabric.name
            except OSError:  # pragma: no cover - /dev/shm exhausted
                self._fabric = None
        self.transport = "shm" if self._fabric is not None else "pipe"
        self.proc = ctx.Process(target=_site_worker,
                                args=(child, self.cfg, shm_name),
                                daemon=True)
        self.proc.start()
        child.close()
        self.ready_summary = self._recv("ready")

    @property
    def pid(self) -> int | None:
        return self.proc.pid

    def _context(self) -> str:
        return (f" (site {self.name!r}, last completed period "
                f"{len(self.log)})")

    def _recv(self, expect: str):
        msg = poll_recv(self.conn, self.recv_deadline_s,
                        proc=self.proc, context=self._context())
        if msg[0] == "error":
            # The worker *reported* a failure before dying: that is a
            # simulation bug, not a crash — replay would just repeat
            # it, so surface it instead.
            raise RuntimeError(
                f"site worker {self.name!r} failed: {msg[1]}")
        if msg[0] != expect:  # pragma: no cover - protocol guard
            raise RuntimeError(f"expected {expect!r}, got {msg[0]!r}")
        return msg[1]

    # -- supervised request/replay ------------------------------------
    def _exchange(self, message: tuple, expect: str, period: int):
        """One send/receive; ``period`` indexes the summary lane.

        On the shm transport an ``advance`` reply's payload lives in
        the fabric: the pipe ``ok`` (which orders writer before
        reader) carries ``None`` and the summary is read from the
        lane at the period's epoch.
        """
        self.conn.send(message)
        reply = self._recv(expect)
        if (reply is None and expect == "ok"
                and self._fabric is not None):
            vec = self._fabric.lane("summary").read(
                period, deadline_s=self.recv_deadline_s)
            reply = unpack_summary(self.name, vec)
        return reply

    def _recover(self) -> None:
        self.restarts += 1
        if self.restarts > self.max_restarts:
            raise ShardWorkerDied(
                f"site worker {self.name!r} exceeded "
                f"{self.max_restarts} restarts")
        self.close()
        self._spawn()
        # Replay everything already acknowledged; deterministic sims
        # reproduce the same trajectory, so the replies (discarded
        # here) are bit-identical to the ones consumed the first time.
        # Periods renumber from 1 because the fresh worker's lane
        # epochs do too.
        for period, message in enumerate(self.log[:-1], start=1):
            self._exchange(message, _expect_for(message), period)

    def request(self, message: tuple):
        self.log.append(message)
        expect = _expect_for(message)
        period = len(self.log)
        while True:
            try:
                return self._exchange(self.log[-1], expect, period)
            except (ShardWorkerDied, BrokenPipeError, OSError):
                self._recover()

    def advance(self, until: float, units: float) -> SiteSummary:
        return self.request(("advance", until, units))

    def finish(self) -> tuple[CoSimResult, float, float]:
        out = self.request(("finish",))
        self.proc.join(timeout=30.0)
        return out

    def close(self) -> None:
        self.conn.close()
        if self.proc.is_alive():
            self.proc.terminate()
            self.proc.join(timeout=5.0)
        if self._fabric is not None:
            self._fabric.close()
            self._fabric = None


def _expect_for(message: tuple) -> str:
    return "ok" if message[0] == "advance" else "result"


class FederatedCoSimulation:
    """Drive N site plants under one global router.

    Parameters
    ----------
    sites:
        The federation members (plant config + routing metadata).
    regions:
        User populations with home sites, latency geometry, peak
        demand, and the UTC offset that phases their diurnal cycle.
    policy:
        ``"optimizing"`` (managed federation) or ``"static-home"``
        (the naive baseline) — see :class:`GlobalRouter`.
    workers:
        ``False`` runs every site in-process (the bit-identical
        reference); ``True`` gives each site its own supervised
        worker process.
    period_s:
        Macro period between routing decisions (default 300 s).
    recv_deadline_s / max_restarts:
        Supervisor knobs: per-reply deadline and the restart budget
        per site before the run is abandoned.
    chaos_kill:
        ``{site name: period index}`` — SIGKILL that site's worker
        just before the given period's exchange (test hook for the
        crash-tolerance contract; ignored in-process).
    tracer:
        Optional :class:`~repro.obs.tracer.Tracer`; the chosen
        transport is recorded as a ``federation.transport.<name>``
        counter.

    After :meth:`run`, :attr:`transport` names the summary exchange
    path: ``"local"`` (in-process), ``"shm"`` (shared-memory summary
    lanes), or ``"pipe"`` (pickled summaries — the fallback when
    shared memory is unavailable or ``REPRO_NO_SHM=1``).  The
    parent→worker advance stream always stays on the pipe: it is the
    supervisor's replay log.
    """

    def __init__(self, sites: typing.Sequence[FederationSite],
                 regions: typing.Sequence[Region],
                 policy: str = "optimizing",
                 workers: bool = False,
                 period_s: float = 300.0,
                 router_config: RouterConfig | None = None,
                 seed: int = 0,
                 recv_deadline_s: float = 60.0,
                 max_restarts: int = 3,
                 chaos_kill: typing.Mapping[str, int] | None = None,
                 tracer=None):
        if period_s <= 0:
            raise ValueError("period must be positive")
        names = [s.name for s in sites]
        if len(names) != len(set(names)):
            raise ValueError("duplicate site names")
        self.sites = list(sites)
        self.regions = list(regions)
        self.policy = policy
        self.workers = bool(workers)
        self.period_s = float(period_s)
        self.recv_deadline_s = float(recv_deadline_s)
        self.max_restarts = int(max_restarts)
        self.chaos_kill = dict(chaos_kill or {})
        self.router = GlobalRouter(
            [s.meta for s in sites], regions, config=router_config,
            policy=policy, streams=RandomStreams(seed))
        self._profile = DiurnalProfile()
        self.tracer = tracer
        #: Summary exchange path of the (last) run: local / shm / pipe.
        self.transport: str | None = None
        #: Wall-time facts only — never part of the result.
        self.recoveries: dict[str, int] = {}
        self._ran = False

    def demand_at(self, t_s: float) -> dict[str, float]:
        """Each region's demand level (units/s) at federation time t."""
        return {
            r.name: r.peak_units * self._profile(
                t_s + r.utc_offset_h * 3600.0)
            for r in self.regions}

    def _maybe_kill(self, handle, period: int) -> None:
        if self.chaos_kill.get(handle.name) != period:
            return
        if handle.pid is None:
            return  # in-process handle: nothing to kill
        os.kill(handle.pid, signal.SIGKILL)
        handle.proc.join(timeout=10.0)

    def run(self, duration_s: float) -> FederationResult:
        """Advance the federation through ``duration_s`` and merge."""
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        if self._ran:
            raise RuntimeError("a federated co-simulation runs once")
        self._ran = True
        handle_cls = _SiteHandle if self.workers else _LocalSiteHandle
        handles = [handle_cls(s.config,
                              recv_deadline_s=self.recv_deadline_s,
                              max_restarts=self.max_restarts)
                   for s in self.sites]
        self.transport = handles[0].transport if handles else "local"
        if self.tracer is not None:
            self.tracer.count(f"federation.transport.{self.transport}")
        try:
            summaries: dict[str, SiteSummary] = {
                h.name: h.ready_summary for h in handles}
            starts = {s.time_s for s in summaries.values()}
            if len(starts) != 1:
                raise RuntimeError(
                    f"sites disagree on start time: {starts} — "
                    "federation sites must share boot_s")
            t = start = starts.pop()
            end = start + duration_s
            offered = 0.0
            router_shed = 0.0
            cost = 0.0
            period = 0
            decision: RouteDecision
            while t < end:
                t_next = min(t + self.period_s, end)
                dt = t_next - t
                # Provision against the demand level at the *end* of
                # the period: on a rising diurnal edge the assignment
                # then covers the whole period instead of trailing it
                # by one step.
                demands = self.demand_at(t_next)
                decision = self.router.decide(t, summaries, demands)
                offered += sum(demands.values()) * dt
                router_shed += decision.total_shed * dt
                cost += decision.cost_per_hour * dt / 3600.0
                for handle in handles:
                    self._maybe_kill(handle, period)
                    summaries[handle.name] = handle.advance(
                        t_next, decision.assignments.get(handle.name,
                                                         0.0))
                t = t_next
                period += 1
            finished = {h.name: h.finish() for h in handles}
        finally:
            for handle in handles:
                self.recoveries[handle.name] = getattr(
                    handle, "restarts", 0)
                handle.close()
        site_results = {name: f[0] for name, f in finished.items()}
        placed = sum(f[1] for f in finished.values())
        site_shed = sum(f[2] for f in finished.values())
        it = sum(r.it_energy_j for r in site_results.values())
        facility = sum(r.facility_energy_j
                       for r in site_results.values())
        shed_total = router_shed + site_shed
        return FederationResult(
            duration_s=duration_s,
            site_results=site_results,
            offered_unit_s=offered,
            placed_unit_s=placed,
            router_shed_unit_s=router_shed,
            site_shed_unit_s=site_shed,
            served_fraction=(1.0 - shed_total / offered
                             if offered > 0.0 else 1.0),
            it_energy_j=it,
            facility_energy_j=facility,
            energy_weighted_pue=(facility / it if it > 0.0
                                 else float("inf")),
            routing_cost=cost,
            failovers=self.router.failovers,
            transitions=tuple(self.router.transitions),
            decisions=self.router.decisions,
        )
