"""Geo-federation: multi-DC co-simulation with outage failover.

The paper's macro layer one level up (§3.2): N full data-center
plants advance in macro-period lockstep under a global router that
prices sites by live PUE and electricity price, fails demand over
when a region goes dark, degrades gracefully when telemetry goes
stale, and — with worker processes — survives worker crashes by
deterministic restart-and-replay.  See DESIGN.md §13.
"""

from repro.federation.federation import (
    FederatedCoSimulation,
    FederationResult,
    FederationSite,
)
from repro.federation.router import (
    GlobalRouter,
    Region,
    RouteDecision,
    RouterConfig,
    RoutingMode,
    SiteHealth,
    SiteMeta,
)
from repro.federation.sites import SiteConfig, SiteRuntime, SiteSummary

__all__ = [
    "FederatedCoSimulation",
    "FederationResult",
    "FederationSite",
    "GlobalRouter",
    "Region",
    "RouteDecision",
    "RouterConfig",
    "RoutingMode",
    "SiteConfig",
    "SiteHealth",
    "SiteMeta",
    "SiteRuntime",
    "SiteSummary",
]
