"""The federation's global router: one decision per macro period.

The router is the paper's macro layer lifted one level up: instead of
waking servers inside one room, it places regional demand across whole
facilities, pricing each site by its *live* window PUE and electricity
price (the :mod:`repro.core.geo` greedy optimizer underneath — EXP-GEO
and EXP-MOON promoted onto real plants).

Robustness is the point, and it has two independent axes:

**Telemetry trust** (per site, a degraded-routing ladder reusing the
:class:`~repro.controlplane.telemetry.StateEstimator`):

* ``OPTIMIZING`` — the summary is fresh; route on believed capacity
  and live PUE.
* ``LAST_KNOWN_GOOD`` — the site has been silent past
  ``stale_after_s``; keep routing on the estimator's last-known-good
  values.
* ``STATIC_HOME`` — silent past ``partition_after_s``: the router is
  partitioned from the site and falls back to blind home routing for
  that site's own regions (we can't see it, so we stop making claims
  about it).

**Site health** (from believed capacity, with hysteresis):

* ``UP`` / ``DEGRADED`` — routable at believed healthy capacity.
* ``DARK`` — believed healthy capacity fell below ``dark_fraction``
  of installed (a regional blackout): excluded from the pool, its
  home demand fails over to surviving sites through the optimizer.
* ``RECOVERING`` — capacity is back above ``recover_fraction`` but
  the site is only re-admitted after ``recovery_periods`` consecutive
  healthy summaries — the anti-flap hysteresis.

Every mode/health transition and every failover lands in the
:class:`~repro.obs.AuditTrail` (the router owns a tracer bound to a
parent-side clock shim), so "why did region X leave home at t=..." is
one query, same as any other actuation in the stack.
"""

from __future__ import annotations

import dataclasses
import enum
import math
import types
import typing

from repro.controlplane.telemetry import StateEstimator
from repro.core.geo import (
    GeoScheduler,
    RegionDemand,
    SiteSpec,
    primary_assignment,
)
from repro.obs import AuditTrail, Tracer
from repro.sim import RandomStreams

from repro.federation.sites import SiteSummary

__all__ = ["Region", "SiteMeta", "RouterConfig", "RoutingMode",
           "SiteHealth", "RouteDecision", "GlobalRouter"]


@dataclasses.dataclass(frozen=True)
class Region:
    """One user population and its latency geometry."""

    name: str
    home: str                               # home site name
    peak_units: float                       # work units/s at peak
    latency_ms: typing.Mapping[str, float]  # site -> RTT
    latency_ceiling_ms: float = 150.0
    utc_offset_h: float = 0.0               # phase of its diurnal peak

    def __post_init__(self):
        if self.peak_units < 0:
            raise ValueError("peak demand cannot be negative")
        if self.home not in self.latency_ms:
            raise ValueError(f"region {self.name!r} has no latency "
                             f"entry for its home site {self.home!r}")


@dataclasses.dataclass(frozen=True)
class SiteMeta:
    """Parent-side pricing facts about one site (never crosses a pipe)."""

    name: str
    energy_price_per_kwh: float = 0.10
    static_pue: float = 1.3                 # fallback before telemetry
    watts_per_unit: float = 3.0

    def __post_init__(self):
        if self.energy_price_per_kwh < 0:
            raise ValueError("price cannot be negative")
        if self.static_pue < 1.0:
            raise ValueError("PUE cannot be below 1")


@dataclasses.dataclass(frozen=True)
class RouterConfig:
    """Trust and hysteresis knobs of the degraded-routing ladder."""

    stale_after_s: float = 900.0       # optimizing -> last-known-good
    partition_after_s: float = 1800.0  # last-known-good -> static-home
    dark_fraction: float = 0.5         # healthy/installed below => dark
    recover_fraction: float = 0.9      # healthy/installed above => healing
    recovery_periods: int = 3          # consecutive healthy summaries
    telemetry_dropout: float = 0.0     # chance a summary never arrives
    #: Keep a region at its current site unless a from-scratch plan is
    #: at least this much cheaper (or sheds less).  Every migration
    #: costs real served work — the receiving manager has to wake
    #: servers while the demand is already there — so the router only
    #: follows the moon when the moon is worth following.
    migration_threshold: float = 0.10
    #: Drain a site the moment it reports running on battery: the
    #: bridge lasts minutes, and demand still on the floor when the
    #: battery dies is shed, not served.
    evacuate_on_battery: bool = True
    #: Fraction of a site's believed healthy capacity the router will
    #: actually load.  Routing a room to 100% leaves no slack for
    #: dispatch granularity or the thermal envelope — a fully loaded
    #: small room rides its CRACs into alarm, drains, and sheds far
    #: more than the headroom costs.
    headroom_fraction: float = 0.8

    def __post_init__(self):
        if not 0 < self.stale_after_s <= self.partition_after_s:
            raise ValueError("need 0 < stale_after_s <= partition_after_s")
        if not 0.0 <= self.dark_fraction <= self.recover_fraction <= 1.0:
            raise ValueError(
                "need 0 <= dark_fraction <= recover_fraction <= 1")
        if self.recovery_periods < 1:
            raise ValueError("recovery needs at least one period")
        if not 0.0 <= self.telemetry_dropout < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        if self.migration_threshold < 0.0:
            raise ValueError("migration threshold cannot be negative")
        if not 0.0 < self.headroom_fraction <= 1.0:
            raise ValueError("headroom fraction must be in (0, 1]")


class RoutingMode(enum.Enum):
    """How much the router trusts its telemetry for one site."""

    OPTIMIZING = "optimizing"
    LAST_KNOWN_GOOD = "last-known-good"
    STATIC_HOME = "static-home"


class SiteHealth(enum.Enum):
    """What the router believes about one site's fleet."""

    UP = "up"
    DEGRADED = "degraded"
    DARK = "dark"
    RECOVERING = "recovering"


class RouteDecision(typing.NamedTuple):
    """One period's routing outcome."""

    time_s: float
    assignments: dict            # site -> work units/s
    shed: dict                   # region -> work units/s unplaced
    modes: dict                  # site -> RoutingMode
    health: dict                 # site -> SiteHealth
    cost_per_hour: float
    off_home: int                # regions primarily served off-home
    failovers: int               # failover *events* this period

    @property
    def total_shed(self) -> float:
        return sum(self.shed.values())


class GlobalRouter:
    """Period-by-period demand placement across federation sites.

    ``policy`` selects the headline comparison: ``"optimizing"`` is
    the managed federation (cost optimization + failover + the
    degraded-routing ladder); ``"static-home"`` is the naive baseline
    that pins every region to its home site no matter what.

    The router is a parent-side object with no simulation environment
    of its own: a tiny clock shim carries the federation time into the
    :class:`StateEstimator` and the tracer, and all randomness (the
    optional telemetry dropout) comes from the ``federation.telemetry``
    substream drawn in fixed site order — worker scheduling can never
    perturb it.
    """

    def __init__(self, sites: typing.Sequence[SiteMeta],
                 regions: typing.Sequence[Region],
                 config: RouterConfig | None = None,
                 policy: str = "optimizing",
                 streams: RandomStreams | None = None,
                 audit_capacity: int = 16_384):
        if policy not in ("optimizing", "static-home"):
            raise ValueError(f"unknown routing policy {policy!r}")
        if not sites:
            raise ValueError("need at least one site")
        names = [s.name for s in sites]
        if len(names) != len(set(names)):
            raise ValueError("duplicate site names")
        homes = {r.home for r in regions}
        missing = homes - set(names)
        if missing:
            raise ValueError(f"regions homed to unknown sites: "
                             f"{sorted(missing)}")
        self.sites = {s.name: s for s in sites}
        self.site_order = names
        self.regions = list(regions)
        self.config = config or RouterConfig()
        self.policy = policy
        self.clock = types.SimpleNamespace(now=0.0)
        self.estimator = StateEstimator(
            self.clock, history_s=4 * self.config.partition_after_s)
        self.tracer = Tracer().bind(self.clock)
        self.audit = AuditTrail(self.tracer, capacity=audit_capacity)
        self._rng = (streams or RandomStreams(0)).get(
            "federation.telemetry")
        self._installed: dict[str, float] = {}
        self._mode = {n: RoutingMode.OPTIMIZING for n in names}
        self._health = {n: SiteHealth.UP for n in names}
        self._streak = {n: 0 for n in names}
        self._primary: dict[str, str] | None = None
        #: ``(time_s, site, axis, old, new)`` for every transition.
        self.transitions: list[tuple] = []
        #: Cumulative failover *events*: a region's primary site
        #: changed to somewhere other than its home.  Serving off-home
        #: for a hundred quiet periods is one event, not a hundred.
        self.failovers = 0
        self.decisions = 0

    # ------------------------------------------------------------------
    # Telemetry intake
    # ------------------------------------------------------------------
    def _ingest(self, summaries: typing.Mapping[str, SiteSummary | None]
                ) -> None:
        dropout = self.config.telemetry_dropout
        for name in self.site_order:
            summary = summaries.get(name)
            # The dropout draw happens for every *delivered* summary in
            # fixed site order, so the stream is identical no matter
            # how many workers produced the summaries.
            if (summary is not None and dropout > 0.0
                    and self._rng.random() < dropout):
                summary = None
            if summary is None:
                continue
            self._installed[name] = summary.installed_capacity
            self.estimator.observe(f"{name}.healthy",
                                   summary.healthy_capacity,
                                   summary.time_s)
            if not math.isnan(summary.window_pue):
                self.estimator.observe(f"{name}.pue",
                                       summary.window_pue,
                                       summary.time_s)
            self.estimator.observe(f"{name}.on_battery",
                                   summary.on_battery, summary.time_s)

    def _transition(self, table: dict, name: str, new, axis: str) -> None:
        old = table[name]
        if old is new:
            return
        table[name] = new
        self.transitions.append(
            (self.clock.now, name, axis, old.value, new.value))
        self.tracer.event(f"route-{axis}", "actuation", site=name,
                          old=old.value, new=new.value)

    def _update_modes(self) -> None:
        cfg = self.config
        for name in self.site_order:
            age = self.estimator.age_s(f"{name}.healthy")
            if age <= cfg.stale_after_s:
                mode = RoutingMode.OPTIMIZING
            elif age <= cfg.partition_after_s:
                mode = RoutingMode.LAST_KNOWN_GOOD
            else:
                mode = RoutingMode.STATIC_HOME
            self._transition(self._mode, name, mode, "mode")

    def _update_health(self) -> None:
        cfg = self.config
        for name in self.site_order:
            if self._mode[name] is RoutingMode.STATIC_HOME:
                # Partitioned: no basis for changing our belief.
                continue
            reading = self.estimator.read(f"{name}.healthy")
            installed = self._installed.get(name)
            if reading.missing or not installed:
                continue
            frac = reading.value / installed
            current = self._health[name]
            if frac < cfg.dark_fraction:
                self._streak[name] = 0
                health = SiteHealth.DARK
            elif current in (SiteHealth.DARK, SiteHealth.RECOVERING):
                if frac >= cfg.recover_fraction:
                    self._streak[name] += 1
                    health = (SiteHealth.UP
                              if self._streak[name]
                              >= cfg.recovery_periods
                              else SiteHealth.RECOVERING)
                else:
                    self._streak[name] = 0
                    health = SiteHealth.RECOVERING
            else:
                on_battery = self.estimator.read(
                    f"{name}.on_battery").value is True
                health = (SiteHealth.DEGRADED
                          if on_battery or frac < cfg.recover_fraction
                          else SiteHealth.UP)
            self._transition(self._health, name, health, "health")

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def _site_spec(self, name: str) -> SiteSpec:
        meta = self.sites[name]
        capacity = self.estimator.read(f"{name}.healthy")
        pue = self.estimator.read(f"{name}.pue")
        believed = (capacity.value if not capacity.missing
                    else self._installed.get(name, 0.0))
        return SiteSpec(
            name=name,
            capacity=self.config.headroom_fraction * believed,
            pue=(max(1.0, pue.value) if not pue.missing
                 else meta.static_pue),
            energy_price_per_kwh=meta.energy_price_per_kwh,
            watts_per_unit=meta.watts_per_unit)

    def _static_cost(self, name: str) -> float:
        """$/unit-hour at a blind site (static PUE — we can't see it)."""
        meta = self.sites[name]
        return (meta.watts_per_unit * meta.static_pue / 1000.0
                * meta.energy_price_per_kwh)

    def _place(self, pool: list[SiteSpec],
               routable: list[Region],
               demands: typing.Mapping[str, float]
               ) -> tuple[dict, dict, float]:
        """Sticky-first placement with a re-optimization trigger.

        Pass 1 keeps every region whole at its current primary site
        when that site is still in the pool, latency-eligible, and has
        the capacity; the rest go through the greedy optimizer on the
        residual capacities.  A from-scratch plan is then computed and
        adopted only when it sheds less or beats the sticky plan's
        cost by ``migration_threshold`` — the routing-level hysteresis
        that stops regions ping-ponging between near-equal sites every
        period (each ping costs served work while the receiving
        manager wakes its fleet).
        """
        specs = {s.name: s for s in pool}
        previous = self._primary or {}
        remaining = {s.name: s.capacity for s in pool}
        sticky: dict[tuple[str, str], float] = {}
        leftovers: list[Region] = []
        for region in routable:
            home = previous.get(region.name)
            amount = float(demands[region.name])
            rtt = region.latency_ms.get(home) if home else None
            if (home in specs and rtt is not None
                    and rtt <= region.latency_ceiling_ms
                    and remaining[home] >= amount):
                sticky[(region.name, home)] = amount
                remaining[home] -= amount
            else:
                leftovers.append(region)

        def to_demands(regions: list[Region]) -> list[RegionDemand]:
            return [RegionDemand(r.name, float(demands[r.name]),
                                 r.latency_ms, r.latency_ceiling_ms)
                    for r in regions]

        fresh = GeoScheduler(pool).route(to_demands(routable))
        if not sticky:
            return fresh.allocation, fresh.unplaced, fresh.cost_per_hour
        residual = [dataclasses.replace(s, capacity=remaining[s.name])
                    for s in pool]
        rest = GeoScheduler(residual).route(to_demands(leftovers))
        sticky_cost = rest.cost_per_hour + sum(
            amount * specs[site].cost_per_unit_hour
            for (_, site), amount in sticky.items())
        if (fresh.total_unplaced < rest.total_unplaced - 1e-9
                or fresh.cost_per_hour
                < (1.0 - self.config.migration_threshold)
                * sticky_cost):
            return fresh.allocation, fresh.unplaced, fresh.cost_per_hour
        allocation = dict(sticky)
        allocation.update(rest.allocation)
        return allocation, rest.unplaced, sticky_cost

    def decide(self, time_s: float,
               summaries: typing.Mapping[str, SiteSummary | None],
               demands: typing.Mapping[str, float]) -> RouteDecision:
        """Place this period's regional demand; audit the decision."""
        self.clock.now = float(time_s)
        self.decisions += 1
        self._ingest(summaries)
        record = self.audit.begin(time_s)
        for name in self.site_order:
            reading = self.estimator.read(f"{name}.healthy")
            self.audit.observe(f"{name}.healthy", reading.value,
                               reading.time_s, reading.age_s,
                               source="telemetry")
        self._update_modes()
        self._update_health()

        assignments = {name: 0.0 for name in self.site_order}
        shed: dict[str, float] = {}
        cost = 0.0
        off_home: set[str] = set()
        failover_regions: set[str] = set()
        primary: dict[str, str] = {}

        if self.policy == "static-home":
            for region in self.regions:
                amount = float(demands.get(region.name, 0.0))
                if amount <= 0.0:
                    continue
                assignments[region.home] += amount
                cost += amount * self._static_cost(region.home)
                primary[region.name] = region.home
        else:
            blind = {n for n in self.site_order
                     if self._mode[n] is RoutingMode.STATIC_HOME}
            routable: list[Region] = []
            for region in self.regions:
                amount = float(demands.get(region.name, 0.0))
                if amount <= 0.0:
                    continue
                if region.home in blind:
                    # Partitioned from the home site: route blind.
                    assignments[region.home] += amount
                    cost += amount * self._static_cost(region.home)
                    primary[region.name] = region.home
                else:
                    routable.append(region)
            pool = [self._site_spec(n) for n in self.site_order
                    if n not in blind
                    and self._health[n] in (SiteHealth.UP,
                                            SiteHealth.DEGRADED)
                    and not (self.config.evacuate_on_battery
                             and self.estimator.read(
                                 f"{n}.on_battery").value is True)]
            if pool:
                allocation, unplaced, pool_cost = self._place(
                    pool, routable, demands)
                for (region_name, site), amount in allocation.items():
                    assignments[site] += amount
                shed.update(unplaced)
                cost += pool_cost
                primary.update(primary_assignment(allocation))
            else:
                for region in routable:
                    shed[region.name] = float(demands[region.name])
            homes = {r.name: r.home for r in self.regions}
            for region_name, site in primary.items():
                if site != homes[region_name]:
                    off_home.add(region_name)
                    previous = (self._primary or {}).get(region_name)
                    if previous != site:
                        failover_regions.add(region_name)
                        self.tracer.event(
                            "failover", "actuation",
                            region=region_name, site=site,
                            home=homes[region_name])
            self._primary = primary

        self.failovers += len(failover_regions)
        unhealthy = [n for n in self.site_order
                     if self._health[n] is not SiteHealth.UP]
        silent = [n for n in self.site_order
                  if self._mode[n] is not RoutingMode.OPTIMIZING]
        self.audit.context(
            mode=("degraded" if unhealthy or silent else "normal"),
            active_incidents=len(unhealthy),
            fault_domains=[f"{n}:{self._health[n].value}"
                           for n in unhealthy],
            watchdog_suspects=len(silent))
        self.audit.commit(
            assignments={k: round(v, 6)
                         for k, v in assignments.items() if v > 0.0},
            shed=round(sum(shed.values()), 6),
            failovers=sorted(failover_regions),
            off_home=sorted(off_home),
            cost_per_hour=round(cost, 6))
        del record
        return RouteDecision(
            time_s=float(time_s), assignments=assignments, shed=shed,
            modes=dict(self._mode), health=dict(self._health),
            cost_per_hour=cost, off_home=len(off_home),
            failovers=len(failover_regions))
