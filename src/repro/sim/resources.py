"""Shared resources for simulation processes.

Three primitives cover everything the data-center models need:

* :class:`Resource` — a counted semaphore with a FIFO wait queue
  (e.g. worker threads on a server, migration slots).
* :class:`Container` — a continuous quantity with bounded capacity
  (e.g. UPS battery charge, power budget headroom).
* :class:`Store` — a FIFO buffer of Python objects (e.g. a request
  queue in front of a service tier).
"""

from __future__ import annotations

import collections
import typing

from repro.sim.events import Event

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Environment

__all__ = ["Resource", "Request", "Container", "Store"]


class Request(Event):
    """A pending claim on a :class:`Resource`.

    Fires once the resource grants the claim.  Use as a context manager
    so the slot is always released::

        with server.threads.request() as req:
            yield req
            yield env.timeout(service_time)
    """

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource
        resource._queue.append(self)
        resource._grant()

    def cancel(self) -> None:
        """Withdraw the claim (granted or not)."""
        self.resource.release(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc_info) -> None:
        self.cancel()


class Resource:
    """A counted resource with ``capacity`` identical slots, FIFO grant."""

    def __init__(self, env: "Environment", capacity: int = 1):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._queue: collections.deque[Request] = collections.deque()
        self._users: list[Request] = []

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of claims still waiting."""
        return len(self._queue)

    def request(self) -> Request:
        """Claim one slot (an event that fires when granted)."""
        return Request(self)

    def release(self, request: Request) -> None:
        """Return the slot held by ``request`` (idempotent)."""
        if request in self._users:
            self._users.remove(request)
        else:
            try:
                self._queue.remove(request)
            except ValueError:
                return  # already fully released
        self._grant()

    def _grant(self) -> None:
        while self._queue and len(self._users) < self.capacity:
            request = self._queue.popleft()
            self._users.append(request)
            request.succeed(request)


class Container:
    """A continuous quantity between 0 and ``capacity``.

    ``put``/``get`` return events that fire once the operation can
    complete in full; partial fills are never granted, so invariants
    such as "a battery never goes negative" hold by construction.
    """

    def __init__(self, env: "Environment", capacity: float = float("inf"),
                 init: float = 0.0):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if not 0 <= init <= capacity:
            raise ValueError(f"init={init} outside [0, {capacity}]")
        self.env = env
        self.capacity = capacity
        self._level = float(init)
        self._getters: collections.deque[tuple[float, Event]] = collections.deque()
        self._putters: collections.deque[tuple[float, Event]] = collections.deque()

    @property
    def level(self) -> float:
        """Current contents."""
        return self._level

    def put(self, amount: float) -> Event:
        """Add ``amount`` (fires once there is room)."""
        if amount < 0:
            raise ValueError(f"negative amount {amount}")
        event = Event(self.env)
        self._putters.append((amount, event))
        self._settle()
        return event

    def get(self, amount: float) -> Event:
        """Remove ``amount`` (fires once available)."""
        if amount < 0:
            raise ValueError(f"negative amount {amount}")
        event = Event(self.env)
        self._getters.append((amount, event))
        self._settle()
        return event

    def _settle(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._putters:
                amount, event = self._putters[0]
                if self._level + amount <= self.capacity:
                    self._level += amount
                    self._putters.popleft()
                    event.succeed(amount)
                    progressed = True
            if self._getters:
                amount, event = self._getters[0]
                if amount <= self._level:
                    self._level -= amount
                    self._getters.popleft()
                    event.succeed(amount)
                    progressed = True


class Store:
    """An unbounded-or-bounded FIFO buffer of arbitrary items."""

    def __init__(self, env: "Environment", capacity: float = float("inf")):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.items: collections.deque = collections.deque()
        self._getters: collections.deque[Event] = collections.deque()
        self._putters: collections.deque[tuple[object, Event]] = collections.deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item) -> Event:
        """Append ``item`` (fires once the store has room)."""
        event = Event(self.env)
        self._putters.append((item, event))
        self._settle()
        return event

    def get(self) -> Event:
        """Pop the oldest item (fires once one exists)."""
        event = Event(self.env)
        self._getters.append(event)
        self._settle()
        return event

    def _settle(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._putters and len(self.items) < self.capacity:
                item, event = self._putters.popleft()
                self.items.append(item)
                event.succeed(item)
                progressed = True
            if self._getters and self.items:
                event = self._getters.popleft()
                event.succeed(self.items.popleft())
                progressed = True
