"""The discrete-event simulation environment.

:class:`Environment` owns simulated time and the event queue.  It is
deliberately minimal and deterministic: ties in time are broken by
priority and then by insertion order, so a simulation with a fixed seed
replays identically — a property the test suite relies on.

Queue entries are 3-tuples ``(time, key, event)`` where ``key`` packs
``((priority - 1) << 52) + eid`` into one int: comparing a single int
is measurably cheaper than comparing two, the offset makes the default
priority 1 pack to the bare insertion id (no arithmetic on the hottest
push site), and 2**52 insertions outlast any simulation this code base
will ever run.  Only priorities 0 (interrupt) and 1 (everything else)
are used today; any non-negative priority packs correctly.

The queue itself is a :class:`~repro.sim.calendar.CalendarQueue` — a
bucketed calendar ring whose total order over ``(time, key)`` is
identical to the ``heapq`` it replaced, but whose pop is an amortised
``list.pop()`` from a pre-sorted bucket instead of a heap sift.  The
hot sites (:meth:`timeout` and ``Timeout.__init__``) inline the
ring-insert to skip even the method-call frame.
"""

from __future__ import annotations

import heapq
import sys
import typing

from repro.sim.calendar import CalendarQueue
from repro.sim.events import (
    AllOf,
    AnyOf,
    Event,
    Timeout,
    _subscribe_callback,
)
from repro.sim.process import Process

__all__ = ["Environment"]

_INF = float("inf")


class Environment:
    """A discrete-event simulation environment.

    Time is a float in **seconds** by convention across this code base
    (workload generators, coolers, and controllers all agree on it).
    """

    __slots__ = ("_now", "_queue", "_eidn", "_active_process", "_free",
                 "tracer")

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue = CalendarQueue(self._now)
        self._eidn = 0
        self._active_process: Process | None = None
        #: Optional :class:`~repro.obs.Tracer` (the flight recorder).
        #: ``None`` — the default — keeps :meth:`run` on the exact
        #: uninstrumented hot loops; an attached tracer redirects to
        #: :meth:`_run_traced`, which keeps the same fast path but
        #: counts the kernel's event mix as it goes.
        self.tracer = None
        #: Recycled Timeout objects (see the run() loops).  A consumed
        #: timeout that provably has no outside references goes here
        #: instead of the garbage collector, and :meth:`timeout` reuses
        #: it — object allocation is a measurable share of a fleet
        #: run's kernel time.
        self._free: list[Timeout] = []

    # ------------------------------------------------------------------
    # Time & scheduling
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Process | None:
        """The process currently executing, if any."""
        return self._active_process

    def schedule(self, event: Event, delay: float = 0.0,
                 priority: int = 1) -> None:
        """Queue ``event`` to be processed after ``delay`` seconds.

        Lower ``priority`` fires first among simultaneous events
        (interrupts use 0 so they beat ordinary wakeups).
        """
        eid = self._eidn = self._eidn + 1
        self._queue.push(
            (self._now + delay, ((priority - 1) << 52) + eid, event))

    def schedule_callback_bulk(self, times, callback,
                               values=None) -> list[Timeout]:
        """Schedule ``callback(event)`` at each absolute time in ``times``.

        The bulk companion to ``timeout() + callbacks.append``: builds
        one :class:`Timeout` per entry up front and inserts them into
        the calendar ring in a single numpy-binned pass — the backbone
        of pre-sampled workload arrival trains.  ``times`` must be
        absolute simulated times ``>= now`` (any order; ties dispatch
        in array order, matching sequential ``timeout()`` calls).  Each
        event's value is the entry of ``values`` at the same position,
        or the scheduled time itself when ``values`` is None.
        """
        now = self._now
        eidn = self._eidn
        shared = (callback,)
        entries = []
        events = []
        for i, t in enumerate(times):
            t = float(t)
            if t < now:
                raise ValueError(f"time {t} lies in the past (now={now})")
            event = Timeout.__new__(Timeout)
            event.env = self
            event.callbacks = shared
            event._value = t if values is None else values[i]
            event.delay = t - now
            event._waiter = None
            eidn += 1
            entries.append((t, eidn, event))
            events.append(event)
        self._eidn = eidn
        self._queue.push_bulk(entries)
        return events

    # ------------------------------------------------------------------
    # Factories
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value=None) -> Timeout:
        """An event that fires ``delay`` seconds from now.

        Builds the :class:`Timeout` inline (no ``__init__`` frame):
        this factory runs once per tick of every periodic process, and
        the saved call frame is worth a few percent of total runtime.
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        free = self._free
        if free:
            # Reuse a consumed timeout (refcount-proven unreferenced
            # when it was parked — see run()); every field is reset.
            event = free.pop()
        else:
            event = Timeout.__new__(Timeout)
            event.env = self
        event.callbacks = ()
        event._value = value
        event.delay = delay
        event._waiter = None
        eid = self._eidn = self._eidn + 1
        # Inlined CalendarQueue.push — this is the hottest push site.
        q = self._queue
        t = self._now + delay
        tw = t * q.inv_width
        idx = int(tw)
        if idx > tw:
            idx -= 1
        if idx < q.far_start_idx:
            cur = q.cur
            if idx > cur:
                q.buckets[idx & q.mask].append((t, eid, event))
                q.size += 1
            else:
                # Current-or-behind bucket: clamp + interrupt flag
                # (see CalendarQueue.push).
                b = q.buckets[cur & q.mask]
                b.append((t, eid, event))
                q.size += 1
                q.intr = True
                if t < q.intr_t:
                    q.intr_t = t
                if len(b) > 1:
                    q.dirty = True
        else:
            heapq.heappush(q.far, (t, eid, event))
        return event

    def process(self, generator: typing.Generator,
                name: str | None = None) -> Process:
        """Start a new process running ``generator``."""
        return Process(self, generator, name=name)

    def any_of(self, events: typing.Sequence[Event]) -> AnyOf:
        """Condition event firing when any of ``events`` fires."""
        return AnyOf(self, events)

    def all_of(self, events: typing.Sequence[Event]) -> AllOf:
        """Condition event firing when all of ``events`` have fired."""
        return AllOf(self, events)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _dispatch(self, event: Event) -> None:
        """Fire ``event``'s waiters.  Shared by :meth:`step` and the
        inlined loops in :meth:`run` (which bypass it on the hot path).
        """
        callbacks, event.callbacks = event.callbacks, None
        if type(event) is Timeout:
            waiter = event._waiter
            if waiter is not None:
                # Invariant: a set waiter means callbacks was never
                # materialized — the waiter is the only subscriber.
                waiter._resume(event)
                return
            for callback in callbacks:
                callback(event)
            return
        for callback in callbacks:
            callback(event)
        # Cheapest test first: almost every event has at least one
        # waiter, so the isinstance check is rarely reached.
        if not callbacks and not event._ok and isinstance(event, Process):
            # Nobody was waiting on a crashed process: surface the error
            # instead of letting it pass silently.
            raise event._value

    def step(self) -> None:
        """Process the single next event.

        Raises :class:`IndexError` when the queue is empty.
        """
        time, _key, event = self._queue.pop()
        self._now = time
        self._dispatch(event)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue.peek_time()

    def run(self, until: float | Event | None = None):
        """Run the simulation.

        * ``until`` is ``None``: run until the event queue drains.
        * ``until`` is a number: run to that absolute time (events at
          exactly that time are *not* processed, matching SimPy).
        * ``until`` is an :class:`Event`: run until it is processed and
          return its value.

        The drain and run-to-horizon loops inline both :meth:`step` and
        the resumption of a process waiting on a pure :class:`Timeout`
        (the overwhelmingly common wakeup): one generator ``send`` per
        event with no intermediate Python frames.  At fleet scale the
        kernel spends its life here.
        """
        if self.tracer is not None:
            return self._run_traced(until)
        q = self._queue
        pop_before = q.pop_before
        free = self._free
        getrefcount = sys.getrefcount

        if isinstance(until, Event):
            sentinel = until
            if sentinel.processed:
                if not sentinel.ok:
                    raise sentinel.value
                return sentinel.value
            fired: list[Event] = []
            _subscribe_callback(sentinel, fired.append)
            while not fired:
                entry = pop_before(_INF)
                if entry is None:
                    break
                self._now = entry[0]
                self._dispatch(entry[2])
            if not fired:
                raise RuntimeError(
                    "simulation ended before the awaited event fired")
            if not sentinel.ok:
                raise sentinel.value
            return sentinel.value

        if until is None:
            horizon = _INF
        else:
            horizon = float(until)
            if horizon < self._now:
                raise ValueError(
                    f"until={horizon} lies in the past (now={self._now})")
        take_before = q.take_before
        while True:
            batch = take_before(horizon)
            if batch is None:
                break
            # The batch is descending; batch.pop() consumes it in
            # dispatch order.  A push landing inside the batch's time
            # window sets q.intr; the remainder goes back for a
            # re-sort only when the push can actually precede a batch
            # entry (strictly smaller time than the batch maximum —
            # fresh eids always order after pending ones at equal
            # times).  See CalendarQueue.take_before.
            try:
                while batch:
                    if q.intr:
                        q.intr = False
                        if q.intr_t < batch[0][0]:
                            q.intr_t = _INF
                            q.requeue(batch)
                            break
                        q.intr_t = _INF
                    entry = batch.pop()
                    time, _key, event = entry
                    # Drop the queue tuple so the refcount-based
                    # recycling check below sees only the `event`
                    # local + the getrefcount argument.
                    entry = None
                    self._now = time
                    if type(event) is Timeout:
                        proc = event._waiter
                        if proc is not None:
                            # Hot path: one process waiting on a plain
                            # timeout (a set waiter implies no other
                            # subscribers).  Resume its generator right
                            # here — no _dispatch or _resume frame — and
                            # re-subscribe it if it yields another fresh
                            # timeout (it almost always does).
                            event.callbacks = None
                            self._active_process = proc
                            try:
                                result = proc._send(event._value)
                            except StopIteration as stop:
                                self._active_process = None
                                proc._target = None
                                proc.succeed(stop.value)
                                continue
                            except BaseException as exc:
                                self._active_process = None
                                proc._target = None
                                proc.fail(exc)
                                self._on_process_failure(proc, exc)
                                continue
                            self._active_process = None
                            if type(result) is Timeout:
                                callbacks = result.callbacks
                                if callbacks is not None:
                                    proc._target = result
                                    if type(callbacks) is tuple:
                                        waiter = result._waiter
                                        if waiter is None:
                                            result._waiter = proc
                                        else:
                                            result._waiter = None
                                            result.callbacks = [
                                                waiter._resume_cb,
                                                proc._resume_cb,
                                            ]
                                    else:
                                        callbacks.append(proc._resume_cb)
                                    # Recycle the consumed timeout when
                                    # provably unreferenced (the local +
                                    # the getrefcount argument are the
                                    # only refs left): timeout() reuses
                                    # the object instead of allocating.
                                    if getrefcount(event) == 2:
                                        free.append(event)
                                    continue
                            proc._target = None
                            proc._subscribe(result)
                            continue
                    self._dispatch(event)
            except BaseException:
                if batch:
                    q.requeue(batch)
                raise
        if until is not None:
            self._now = horizon
        return None

    def _run_traced(self, until: float | Event | None):
        """The :meth:`run` loops with flight-recorder accounting.

        Same fast path (inlined timeout resume, free-list recycling),
        plus local counters for the kernel's event mix folded into the
        tracer at exit.  The extra cost is a handful of integer adds
        per event — the traced-on overhead budget the observability
        tests pin below 10 %.
        """
        tracer = self.tracer
        q = self._queue
        pop_before = q.pop_before
        free = self._free
        getrefcount = sys.getrefcount
        n_fast = n_dispatch = n_completed = n_failed = 0

        if isinstance(until, Event):
            # Rare sentinel form: generic dispatch, still counted.
            sentinel = until
            handle = tracer.span("kernel.run", "kernel")
            timer = tracer.timer("kernel")
            timer.__enter__()
            try:
                with handle:
                    if sentinel.processed:
                        if not sentinel.ok:
                            raise sentinel.value
                        return sentinel.value
                    fired: list[Event] = []
                    _subscribe_callback(sentinel, fired.append)
                    while not fired:
                        entry = pop_before(_INF)
                        if entry is None:
                            break
                        self._now = entry[0]
                        self._dispatch(entry[2])
                        n_dispatch += 1
                    if not fired:
                        raise RuntimeError("simulation ended before the "
                                           "awaited event fired")
                    if not sentinel.ok:
                        raise sentinel.value
                    return sentinel.value
            finally:
                timer.__exit__(None, None, None)
                tracer.count("kernel.dispatched", n_dispatch)

        if until is None:
            horizon = _INF
        else:
            horizon = float(until)
            if horizon < self._now:
                raise ValueError(
                    f"until={horizon} lies in the past (now={self._now})")
        handle = tracer.span("kernel.run", "kernel")
        timer = tracer.timer("kernel")
        timer.__enter__()
        try:
            with handle:
                take_before = q.take_before
                while True:
                    batch = take_before(horizon)
                    if batch is None:
                        break
                    try:
                        while batch:
                            if q.intr:
                                q.intr = False
                                if q.intr_t < batch[0][0]:
                                    q.intr_t = _INF
                                    q.requeue(batch)
                                    break
                                q.intr_t = _INF
                            entry = batch.pop()
                            time, _key, event = entry
                            entry = None  # see the untraced loop
                            self._now = time
                            if type(event) is Timeout:
                                proc = event._waiter
                                if proc is not None:
                                    # Hot path — see the untraced loop.
                                    n_fast += 1
                                    event.callbacks = None
                                    self._active_process = proc
                                    try:
                                        result = proc._send(event._value)
                                    except StopIteration as stop:
                                        self._active_process = None
                                        proc._target = None
                                        proc.succeed(stop.value)
                                        n_completed += 1
                                        continue
                                    except BaseException as exc:
                                        self._active_process = None
                                        proc._target = None
                                        proc.fail(exc)
                                        self._on_process_failure(proc, exc)
                                        n_failed += 1
                                        continue
                                    self._active_process = None
                                    if type(result) is Timeout:
                                        callbacks = result.callbacks
                                        if callbacks is not None:
                                            proc._target = result
                                            if type(callbacks) is tuple:
                                                waiter = result._waiter
                                                if waiter is None:
                                                    result._waiter = proc
                                                else:
                                                    result._waiter = None
                                                    result.callbacks = [
                                                        waiter._resume_cb,
                                                        proc._resume_cb,
                                                    ]
                                            else:
                                                callbacks.append(proc._resume_cb)
                                            if getrefcount(event) == 2:
                                                free.append(event)
                                            continue
                                    proc._target = None
                                    proc._subscribe(result)
                                    continue
                            self._dispatch(event)
                            n_dispatch += 1
                    except BaseException:
                        if batch:
                            q.requeue(batch)
                        raise
                if until is not None:
                    self._now = horizon
                return None
        finally:
            timer.__exit__(None, None, None)
            tracer.count("kernel.timeout_fast", n_fast)
            tracer.count("kernel.dispatched", n_dispatch)
            tracer.count("kernel.processes_completed", n_completed)
            tracer.count("kernel.processes_failed", n_failed)

    def _on_process_failure(self, process: Process,
                            exc: BaseException) -> None:
        """Hook invoked when a process dies with an exception.

        The default implementation does nothing here; the failure is
        re-raised by :meth:`step` when the dead process event is
        processed with no waiters.
        """
