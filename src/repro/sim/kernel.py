"""The discrete-event simulation environment.

:class:`Environment` owns simulated time and the event heap.  It is
deliberately minimal and deterministic: ties in time are broken by
priority and then by insertion order, so a simulation with a fixed seed
replays identically — a property the test suite relies on.
"""

from __future__ import annotations

import heapq
import itertools
import typing

from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process

__all__ = ["Environment"]


class Environment:
    """A discrete-event simulation environment.

    Time is a float in **seconds** by convention across this code base
    (workload generators, coolers, and controllers all agree on it).
    """

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._eid = itertools.count()
        self._active_process: Process | None = None

    # ------------------------------------------------------------------
    # Time & scheduling
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Process | None:
        """The process currently executing, if any."""
        return self._active_process

    def schedule(self, event: Event, delay: float = 0.0,
                 priority: int = 1) -> None:
        """Queue ``event`` to be processed after ``delay`` seconds.

        Lower ``priority`` fires first among simultaneous events
        (interrupts use 0 so they beat ordinary wakeups).
        """
        heapq.heappush(
            self._queue, (self._now + delay, priority, next(self._eid), event))

    # ------------------------------------------------------------------
    # Factories
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value=None) -> Timeout:
        """An event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: typing.Generator,
                name: str | None = None) -> Process:
        """Start a new process running ``generator``."""
        return Process(self, generator, name=name)

    def any_of(self, events: typing.Sequence[Event]) -> AnyOf:
        """Condition event firing when any of ``events`` fires."""
        return AnyOf(self, events)

    def all_of(self, events: typing.Sequence[Event]) -> AllOf:
        """Condition event firing when all of ``events`` have fired."""
        return AllOf(self, events)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Process the single next event.

        Raises :class:`IndexError` when the queue is empty.
        """
        time, _priority, _eid, event = heapq.heappop(self._queue)
        self._now = time
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if isinstance(event, Process) and not event._ok and not callbacks:
            # Nobody was waiting on a crashed process: surface the error
            # instead of letting it pass silently.
            raise event._value

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def run(self, until: float | Event | None = None):
        """Run the simulation.

        * ``until`` is ``None``: run until the event queue drains.
        * ``until`` is a number: run to that absolute time (events at
          exactly that time are *not* processed, matching SimPy).
        * ``until`` is an :class:`Event`: run until it is processed and
          return its value.
        """
        if until is None:
            while self._queue:
                self.step()
            return None

        if isinstance(until, Event):
            sentinel = until
            if sentinel.processed:
                if not sentinel.ok:
                    raise sentinel.value
                return sentinel.value
            fired: list[Event] = []
            sentinel.callbacks.append(fired.append)
            while self._queue and not fired:
                self.step()
            if not fired:
                raise RuntimeError(
                    "simulation ended before the awaited event fired")
            if not sentinel.ok:
                raise sentinel.value
            return sentinel.value

        horizon = float(until)
        if horizon < self._now:
            raise ValueError(f"until={horizon} lies in the past (now={self._now})")
        while self._queue and self._queue[0][0] < horizon:
            self.step()
        self._now = horizon
        return None

    def _on_process_failure(self, process: Process,
                            exc: BaseException) -> None:
        """Hook invoked when a process dies with an exception.

        The default implementation does nothing here; the failure is
        re-raised by :meth:`step` when the dead process event is
        processed with no waiters.
        """
