"""The discrete-event simulation environment.

:class:`Environment` owns simulated time and the event heap.  It is
deliberately minimal and deterministic: ties in time are broken by
priority and then by insertion order, so a simulation with a fixed seed
replays identically — a property the test suite relies on.

Heap entries are 3-tuples ``(time, key, event)`` where ``key`` packs
``((priority - 1) << 52) + eid`` into one int: comparing a single int
is measurably cheaper than comparing two, the offset makes the default
priority 1 pack to the bare insertion id (no arithmetic on the hottest
push site), and 2**52 insertions outlast any simulation this code base
will ever run.  Only priorities 0 (interrupt) and 1 (everything else)
are used today; any non-negative priority packs correctly.
"""

from __future__ import annotations

import heapq
import sys
import typing

from repro.sim.events import (
    AllOf,
    AnyOf,
    Event,
    Timeout,
    _subscribe_callback,
)
from repro.sim.process import Process

__all__ = ["Environment"]


class Environment:
    """A discrete-event simulation environment.

    Time is a float in **seconds** by convention across this code base
    (workload generators, coolers, and controllers all agree on it).
    """

    __slots__ = ("_now", "_queue", "_eidn", "_active_process", "_free",
                 "tracer")

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, Event]] = []
        self._eidn = 0
        self._active_process: Process | None = None
        #: Optional :class:`~repro.obs.Tracer` (the flight recorder).
        #: ``None`` — the default — keeps :meth:`run` on the exact
        #: uninstrumented hot loops; an attached tracer redirects to
        #: :meth:`_run_traced`, which keeps the same fast path but
        #: counts the kernel's event mix as it goes.
        self.tracer = None
        #: Recycled Timeout objects (see the run() loops).  A consumed
        #: timeout that provably has no outside references goes here
        #: instead of the garbage collector, and :meth:`timeout` reuses
        #: it — object allocation is a measurable share of a fleet
        #: run's kernel time.
        self._free: list[Timeout] = []

    # ------------------------------------------------------------------
    # Time & scheduling
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Process | None:
        """The process currently executing, if any."""
        return self._active_process

    def schedule(self, event: Event, delay: float = 0.0,
                 priority: int = 1) -> None:
        """Queue ``event`` to be processed after ``delay`` seconds.

        Lower ``priority`` fires first among simultaneous events
        (interrupts use 0 so they beat ordinary wakeups).
        """
        eid = self._eidn = self._eidn + 1
        heapq.heappush(
            self._queue,
            (self._now + delay, ((priority - 1) << 52) + eid, event))

    # ------------------------------------------------------------------
    # Factories
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value=None) -> Timeout:
        """An event that fires ``delay`` seconds from now.

        Builds the :class:`Timeout` inline (no ``__init__`` frame):
        this factory runs once per tick of every periodic process, and
        the saved call frame is worth a few percent of total runtime.
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        free = self._free
        if free:
            # Reuse a consumed timeout (refcount-proven unreferenced
            # when it was parked — see run()); every field is reset.
            event = free.pop()
        else:
            event = Timeout.__new__(Timeout)
            event.env = self
        event.callbacks = ()
        event._value = value
        event.delay = delay
        event._waiter = None
        eid = self._eidn = self._eidn + 1
        heapq.heappush(self._queue, (self._now + delay, eid, event))
        return event

    def process(self, generator: typing.Generator,
                name: str | None = None) -> Process:
        """Start a new process running ``generator``."""
        return Process(self, generator, name=name)

    def any_of(self, events: typing.Sequence[Event]) -> AnyOf:
        """Condition event firing when any of ``events`` fires."""
        return AnyOf(self, events)

    def all_of(self, events: typing.Sequence[Event]) -> AllOf:
        """Condition event firing when all of ``events`` have fired."""
        return AllOf(self, events)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _dispatch(self, event: Event) -> None:
        """Fire ``event``'s waiters.  Shared by :meth:`step` and the
        inlined loops in :meth:`run` (which bypass it on the hot path).
        """
        callbacks, event.callbacks = event.callbacks, None
        if type(event) is Timeout:
            waiter = event._waiter
            if waiter is not None:
                # Invariant: a set waiter means callbacks was never
                # materialized — the waiter is the only subscriber.
                waiter._resume(event)
                return
            for callback in callbacks:
                callback(event)
            return
        for callback in callbacks:
            callback(event)
        # Cheapest test first: almost every event has at least one
        # waiter, so the isinstance check is rarely reached.
        if not callbacks and not event._ok and isinstance(event, Process):
            # Nobody was waiting on a crashed process: surface the error
            # instead of letting it pass silently.
            raise event._value

    def step(self) -> None:
        """Process the single next event.

        Raises :class:`IndexError` when the queue is empty.
        """
        time, _key, event = heapq.heappop(self._queue)
        self._now = time
        self._dispatch(event)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def run(self, until: float | Event | None = None):
        """Run the simulation.

        * ``until`` is ``None``: run until the event queue drains.
        * ``until`` is a number: run to that absolute time (events at
          exactly that time are *not* processed, matching SimPy).
        * ``until`` is an :class:`Event`: run until it is processed and
          return its value.

        The drain and run-to-horizon loops inline both :meth:`step` and
        the resumption of a process waiting on a pure :class:`Timeout`
        (the overwhelmingly common wakeup): one generator ``send`` per
        event with no intermediate Python frames.  At fleet scale the
        kernel spends its life here.
        """
        if self.tracer is not None:
            return self._run_traced(until)
        queue = self._queue
        heappop = heapq.heappop
        free = self._free
        getrefcount = sys.getrefcount

        if until is None:
            while queue:
                time, _key, event = heappop(queue)
                self._now = time
                if type(event) is Timeout:
                    proc = event._waiter
                    if proc is not None:
                        # Hot path: one process waiting on a plain
                        # timeout (a set waiter implies no other
                        # subscribers).  Resume its generator right
                        # here — no _dispatch or _resume frame — and
                        # re-subscribe it if it yields another fresh
                        # timeout (it almost always does).
                        event.callbacks = None
                        self._active_process = proc
                        try:
                            result = proc._send(event._value)
                        except StopIteration as stop:
                            self._active_process = None
                            proc._target = None
                            proc.succeed(stop.value)
                            continue
                        except BaseException as exc:
                            self._active_process = None
                            proc._target = None
                            proc.fail(exc)
                            self._on_process_failure(proc, exc)
                            continue
                        self._active_process = None
                        if type(result) is Timeout:
                            callbacks = result.callbacks
                            if callbacks is not None:
                                proc._target = result
                                if type(callbacks) is tuple:
                                    waiter = result._waiter
                                    if waiter is None:
                                        result._waiter = proc
                                    else:
                                        result._waiter = None
                                        result.callbacks = [
                                            waiter._resume_cb,
                                            proc._resume_cb,
                                        ]
                                else:
                                    callbacks.append(proc._resume_cb)
                                # Recycle the consumed timeout when
                                # provably unreferenced (the local +
                                # the getrefcount argument are the
                                # only refs left): timeout() reuses
                                # the object instead of allocating.
                                if getrefcount(event) == 2:
                                    free.append(event)
                                continue
                        proc._target = None
                        proc._subscribe(result)
                        continue
                self._dispatch(event)
            return None

        if isinstance(until, Event):
            sentinel = until
            if sentinel.processed:
                if not sentinel.ok:
                    raise sentinel.value
                return sentinel.value
            fired: list[Event] = []
            _subscribe_callback(sentinel, fired.append)
            while queue and not fired:
                time, _key, event = heappop(queue)
                self._now = time
                self._dispatch(event)
            if not fired:
                raise RuntimeError(
                    "simulation ended before the awaited event fired")
            if not sentinel.ok:
                raise sentinel.value
            return sentinel.value

        horizon = float(until)
        if horizon < self._now:
            raise ValueError(
                f"until={horizon} lies in the past (now={self._now})")
        while queue and queue[0][0] < horizon:
            time, _key, event = heappop(queue)
            self._now = time
            if type(event) is Timeout:
                proc = event._waiter
                if proc is not None:
                    # Hot path — see the drain loop above.
                    event.callbacks = None
                    self._active_process = proc
                    try:
                        result = proc._send(event._value)
                    except StopIteration as stop:
                        self._active_process = None
                        proc._target = None
                        proc.succeed(stop.value)
                        continue
                    except BaseException as exc:
                        self._active_process = None
                        proc._target = None
                        proc.fail(exc)
                        self._on_process_failure(proc, exc)
                        continue
                    self._active_process = None
                    if type(result) is Timeout:
                        callbacks = result.callbacks
                        if callbacks is not None:
                            proc._target = result
                            if type(callbacks) is tuple:
                                waiter = result._waiter
                                if waiter is None:
                                    result._waiter = proc
                                else:
                                    result._waiter = None
                                    result.callbacks = [
                                        waiter._resume_cb,
                                        proc._resume_cb,
                                    ]
                            else:
                                callbacks.append(proc._resume_cb)
                            # Recycle when provably unreferenced —
                            # see the drain loop above.
                            if getrefcount(event) == 2:
                                free.append(event)
                            continue
                    proc._target = None
                    proc._subscribe(result)
                    continue
            self._dispatch(event)
        self._now = horizon
        return None

    def _run_traced(self, until: float | Event | None):
        """The :meth:`run` loops with flight-recorder accounting.

        Same fast path (inlined timeout resume, free-list recycling),
        plus local counters for the kernel's event mix folded into the
        tracer at exit.  The extra cost is a handful of integer adds
        per event — the traced-on overhead budget the observability
        tests pin below 10 %.
        """
        tracer = self.tracer
        queue = self._queue
        heappop = heapq.heappop
        free = self._free
        getrefcount = sys.getrefcount
        n_fast = n_dispatch = n_completed = n_failed = 0

        if isinstance(until, Event):
            # Rare sentinel form: generic dispatch, still counted.
            sentinel = until
            handle = tracer.span("kernel.run", "kernel")
            timer = tracer.timer("kernel")
            timer.__enter__()
            try:
                with handle:
                    if sentinel.processed:
                        if not sentinel.ok:
                            raise sentinel.value
                        return sentinel.value
                    fired: list[Event] = []
                    _subscribe_callback(sentinel, fired.append)
                    while queue and not fired:
                        time, _key, event = heappop(queue)
                        self._now = time
                        self._dispatch(event)
                        n_dispatch += 1
                    if not fired:
                        raise RuntimeError("simulation ended before the "
                                           "awaited event fired")
                    if not sentinel.ok:
                        raise sentinel.value
                    return sentinel.value
            finally:
                timer.__exit__(None, None, None)
                tracer.count("kernel.dispatched", n_dispatch)

        horizon = None if until is None else float(until)
        if horizon is not None and horizon < self._now:
            raise ValueError(
                f"until={horizon} lies in the past (now={self._now})")
        handle = tracer.span("kernel.run", "kernel")
        timer = tracer.timer("kernel")
        timer.__enter__()
        try:
            with handle:
                while queue and (horizon is None
                                 or queue[0][0] < horizon):
                    time, _key, event = heappop(queue)
                    self._now = time
                    if type(event) is Timeout:
                        proc = event._waiter
                        if proc is not None:
                            # Hot path — see the untraced loops.
                            n_fast += 1
                            event.callbacks = None
                            self._active_process = proc
                            try:
                                result = proc._send(event._value)
                            except StopIteration as stop:
                                self._active_process = None
                                proc._target = None
                                proc.succeed(stop.value)
                                n_completed += 1
                                continue
                            except BaseException as exc:
                                self._active_process = None
                                proc._target = None
                                proc.fail(exc)
                                self._on_process_failure(proc, exc)
                                n_failed += 1
                                continue
                            self._active_process = None
                            if type(result) is Timeout:
                                callbacks = result.callbacks
                                if callbacks is not None:
                                    proc._target = result
                                    if type(callbacks) is tuple:
                                        waiter = result._waiter
                                        if waiter is None:
                                            result._waiter = proc
                                        else:
                                            result._waiter = None
                                            result.callbacks = [
                                                waiter._resume_cb,
                                                proc._resume_cb,
                                            ]
                                    else:
                                        callbacks.append(proc._resume_cb)
                                    if getrefcount(event) == 2:
                                        free.append(event)
                                    continue
                            proc._target = None
                            proc._subscribe(result)
                            continue
                    self._dispatch(event)
                    n_dispatch += 1
                if horizon is not None:
                    self._now = horizon
                return None
        finally:
            timer.__exit__(None, None, None)
            tracer.count("kernel.timeout_fast", n_fast)
            tracer.count("kernel.dispatched", n_dispatch)
            tracer.count("kernel.processes_completed", n_completed)
            tracer.count("kernel.processes_failed", n_failed)

    def _on_process_failure(self, process: Process,
                            exc: BaseException) -> None:
        """Hook invoked when a process dies with an exception.

        The default implementation does nothing here; the failure is
        re-raised by :meth:`step` when the dead process event is
        processed with no waiters.
        """
