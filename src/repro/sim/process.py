"""Generator-based simulation processes.

A process wraps a Python generator.  The generator ``yield``-s
:class:`~repro.sim.events.Event` objects (or other processes) and is
resumed with the event's value once it fires.  This mirrors the SimPy
programming model, which we re-implement here because the execution
environment is offline.
"""

from __future__ import annotations

import typing

from repro.sim.events import Event, Interrupt, Timeout, _subscribe_callback

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Environment

__all__ = ["Process"]


class Process(Event):
    """A running process; also an event that fires when it terminates.

    The process's value is whatever the generator returns; an uncaught
    exception inside the generator fails the process event (and
    propagates to the environment if nobody is waiting on it).
    """

    __slots__ = ("_generator", "name", "_target", "_resume_cb",
                 "_send", "_throw")

    def __init__(self, env: "Environment", generator: typing.Generator,
                 name: str | None = None):
        if not hasattr(generator, "send"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Event | None = None
        # One bound method / send / throw for the process's lifetime —
        # allocating a fresh bound method per wakeup is pure overhead.
        self._resume_cb = self._resume
        self._send = generator.send
        self._throw = generator.throw
        # Bootstrap: resume the generator at time `now`.
        start = Event(env)
        start._ok = True
        start._value = None
        start.callbacks.append(self._resume_cb)
        env.schedule(start)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not terminated."""
        return not self.triggered

    def interrupt(self, cause=None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield.

        Interrupting a terminated process is an error.  The interrupt
        is delivered immediately (at the current simulation time) and
        the interrupted wait target stays pending — the process may
        re-yield it to resume waiting.
        """
        if self.triggered:
            raise RuntimeError(f"{self!r} has terminated and cannot be interrupted")
        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)
        event.callbacks.append(self._resume_cb)
        self.env.schedule(event, priority=0)

    def _resume(self, trigger: Event) -> None:
        # Drop the subscription to the event we were genuinely waiting
        # on if we are resumed by an interrupt instead.
        target = self._target
        if target is not None and trigger is not target:
            if type(target) is Timeout and target._waiter is self:
                target._waiter = None
            elif target.callbacks:
                try:
                    target.callbacks.remove(self._resume_cb)
                except ValueError:
                    pass
        self._target = None
        env = self.env
        env._active_process = self
        try:
            if trigger._ok:
                result = self._send(trigger._value)
            else:
                result = self._throw(trigger._value)
        except StopIteration as stop:
            env._active_process = None
            self.succeed(stop.value)
            return
        except BaseException as exc:
            env._active_process = None
            self.fail(exc)
            env._on_process_failure(self, exc)
            return
        env._active_process = None

        # Fast path: the overwhelmingly common yield is a fresh Timeout
        # (every periodic loop in the codebase) — subscribe without any
        # further inspection unless it already fired.  Take the waiter
        # slot only when we would be the first subscriber, so the
        # kernel fires waiters in subscription order.
        if type(result) is Timeout:
            callbacks = result.callbacks
            if callbacks is not None:
                self._target = result
                if type(callbacks) is tuple:
                    waiter = result._waiter
                    if waiter is None:
                        result._waiter = self
                    else:
                        result._waiter = None
                        result.callbacks = [waiter._resume_cb,
                                            self._resume_cb]
                else:
                    callbacks.append(self._resume_cb)
                return
        self._subscribe(result)

    def _subscribe(self, result) -> None:
        """Wait on ``result`` (any non-fresh-Timeout yield)."""
        env = self.env
        if not isinstance(result, Event):
            self._generator.throw(
                TypeError(f"process {self.name!r} yielded {result!r}, "
                          f"expected an Event"))
        if result.processed:
            # Already fired: resume next tick at the same time.
            relay = Event(env)
            relay._ok = result._ok
            relay._value = result._value
            relay.callbacks.append(self._resume_cb)
            env.schedule(relay)
        else:
            self._target = result
            _subscribe_callback(result, self._resume_cb)

    def __repr__(self) -> str:
        return f"<Process {self.name!r} at {hex(id(self))}>"
