"""Generator-based simulation processes.

A process wraps a Python generator.  The generator ``yield``-s
:class:`~repro.sim.events.Event` objects (or other processes) and is
resumed with the event's value once it fires.  This mirrors the SimPy
programming model, which we re-implement here because the execution
environment is offline.
"""

from __future__ import annotations

import typing

from repro.sim.events import Event, Interrupt

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Environment

__all__ = ["Process"]


class Process(Event):
    """A running process; also an event that fires when it terminates.

    The process's value is whatever the generator returns; an uncaught
    exception inside the generator fails the process event (and
    propagates to the environment if nobody is waiting on it).
    """

    def __init__(self, env: "Environment", generator: typing.Generator,
                 name: str | None = None):
        if not hasattr(generator, "send"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Event | None = None
        # Bootstrap: resume the generator at time `now`.
        start = Event(env)
        start._ok = True
        start._value = None
        start.callbacks.append(self._resume)
        env.schedule(start)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not terminated."""
        return not self.triggered

    def interrupt(self, cause=None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield.

        Interrupting a terminated process is an error.  The interrupt
        is delivered immediately (at the current simulation time) and
        the interrupted wait target stays pending — the process may
        re-yield it to resume waiting.
        """
        if self.triggered:
            raise RuntimeError(f"{self!r} has terminated and cannot be interrupted")
        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)
        event.callbacks.append(self._resume)
        self.env.schedule(event, priority=0)

    def _resume(self, trigger: Event) -> None:
        # Drop the subscription to the event we were genuinely waiting
        # on if we are resumed by an interrupt instead.
        if self._target is not None and trigger is not self._target:
            if self._target.callbacks is not None:
                try:
                    self._target.callbacks.remove(self._resume)
                except ValueError:
                    pass
        self._target = None
        self.env._active_process = self
        try:
            if trigger._ok:
                result = self._generator.send(trigger._value)
            else:
                result = self._generator.throw(trigger._value)
        except StopIteration as stop:
            self.env._active_process = None
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.env._active_process = None
            self.fail(exc)
            self.env._on_process_failure(self, exc)
            return
        self.env._active_process = None

        if not isinstance(result, Event):
            self._generator.throw(
                TypeError(f"process {self.name!r} yielded {result!r}, "
                          f"expected an Event"))
        if result.processed:
            # Already fired: resume next tick at the same time.
            relay = Event(self.env)
            relay._ok = result._ok
            relay._value = result._value
            relay.callbacks.append(self._resume)
            self.env.schedule(relay)
        else:
            self._target = result
            result.callbacks.append(self._resume)

    def __repr__(self) -> str:
        return f"<Process {self.name!r} at {hex(id(self))}>"
