"""Events for the discrete-event kernel.

An :class:`Event` is a one-shot synchronization point.  Processes wait on
events by ``yield``-ing them; the kernel resumes every waiter when the
event is *triggered*.  Events carry a value (delivered as the result of
the ``yield``) or an exception (raised inside the waiting process).
"""

from __future__ import annotations

import heapq
import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Environment

__all__ = ["Event", "Timeout", "AnyOf", "AllOf", "Interrupt"]

_PENDING = object()

#: Shared initial ``callbacks`` for :class:`Timeout`.  A pending event's
#: callbacks may be this immutable empty tuple instead of a list — the
#: common timeout never gains a callback (its sole waiter rides the
#: ``_waiter`` slot), so skipping the per-timeout list allocation is a
#: measurable kernel win.  Subscribers that append must materialize a
#: real list first (see ``Process._subscribe`` and ``_Condition``).
_NO_CALLBACKS: tuple = ()


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    The interrupt ``cause`` is available as ``exc.cause``.
    """

    @property
    def cause(self):
        return self.args[0] if self.args else None


class Event:
    """A one-shot event that processes can wait on.

    Events move through three states: *pending* (just created),
    *triggered* (scheduled to fire, value decided) and *processed*
    (callbacks have run).  Triggering twice is an error — events are
    one-shot by design, which keeps causality in the kernel auditable.

    Events are allocated once per kernel wakeup, so the class is slotted
    — a day-long fleet simulation creates millions of them.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: list | None = []
        self._value = _PENDING
        self._ok: bool | None = None

    @property
    def triggered(self) -> bool:
        """Whether the event has a decided value."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """Whether the event's callbacks have already run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """Whether the event succeeded.  Only valid once triggered."""
        if self._value is _PENDING:
            raise RuntimeError("event is not yet triggered")
        return bool(self._ok)

    @property
    def value(self):
        """The event's value (or exception instance on failure)."""
        if self._value is _PENDING:
            raise RuntimeError("event is not yet triggered")
        return self._value

    def succeed(self, value=None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        Every waiting process will see ``exception`` raised at its
        ``yield`` statement.
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        if self._value is not _PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def __repr__(self) -> str:
        state = (
            "processed" if self.processed
            else "triggered" if self.triggered
            else "pending"
        )
        return f"<{type(self).__name__} {state} at {hex(id(self))}>"


class Timeout(Event):
    """An event that fires after a fixed simulated delay.

    The constructor is the kernel's hottest allocation site (every
    periodic process yields one per tick), so it assigns the slots
    directly instead of chaining through :meth:`Event.__init__`.

    ``_waiter`` is a dispatch fast lane: when exactly one process waits
    on the timeout (the overwhelmingly common case) it is stored here
    instead of in ``callbacks``, letting the kernel's run loop resume
    the generator without allocating a bound method or walking a list.
    Invariant: ``_waiter`` is only ever set while ``callbacks`` is the
    pristine empty tuple; materializing the callbacks list moves the
    waiter into it (first position — firing order still matches
    subscription order).
    """

    __slots__ = ("delay", "_waiter")

    # Timeouts are pre-triggered successes: ``_ok`` can never change
    # (succeed/fail reject already-triggered events), so a class
    # attribute shadows the inherited slot and saves a store per tick.
    _ok = True

    def __init__(self, env: "Environment", delay: float, value=None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self.env = env
        self.callbacks = _NO_CALLBACKS
        self._value = value
        self.delay = delay
        self._waiter = None
        # Inlined env.schedule(self, delay=delay) and the calendar
        # ring insert — the call overhead is measurable at millions of
        # timeouts per run.  Priority 1 packs to the bare insertion id
        # (see Environment.schedule).
        eid = env._eidn = env._eidn + 1
        q = env._queue
        t = env._now + delay
        tw = t * q.inv_width
        idx = int(tw)
        if idx > tw:
            idx -= 1
        if idx < q.far_start_idx:
            cur = q.cur
            if idx > cur:
                q.buckets[idx & q.mask].append((t, eid, self))
                q.size += 1
            else:
                # Current-or-behind bucket: clamp + interrupt flag
                # (see CalendarQueue.push).
                b = q.buckets[cur & q.mask]
                b.append((t, eid, self))
                q.size += 1
                q.intr = True
                if t < q.intr_t:
                    q.intr_t = t
                if len(b) > 1:
                    q.dirty = True
        else:
            heapq.heappush(q.far, (t, eid, self))

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay} at {hex(id(self))}>"


def _subscribe_callback(event: Event, callback) -> None:
    """Append ``callback`` to a pending event's waiter list.

    Materializes the shared empty-tuple callbacks of a fresh
    :class:`Timeout`, moving any ``_waiter`` fast-lane process into the
    list first so the kernel's one-field hot-path check stays sound and
    firing order matches subscription order.
    """
    callbacks = event.callbacks
    if type(callbacks) is tuple:
        waiter = event._waiter  # only Timeouts carry tuple callbacks
        if waiter is not None:
            event._waiter = None
            event.callbacks = [waiter._resume_cb, callback]
        else:
            event.callbacks = [callback]
    else:
        callbacks.append(callback)


class _Condition(Event):
    """Common machinery for :class:`AnyOf` / :class:`AllOf`."""

    __slots__ = ("events", "_remaining")

    def __init__(self, env: "Environment", events: typing.Sequence[Event]):
        super().__init__(env)
        self.events = tuple(events)
        for event in self.events:
            if event.env is not env:
                raise ValueError("all events must share one environment")
        self._remaining = len(self.events)
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            if event.processed:
                self._observe(event)
            else:
                _subscribe_callback(event, self._observe)

    def _collect(self) -> dict:
        # `processed` rather than `triggered`: a Timeout decides its value
        # at construction but has not *fired* until its callbacks run.
        return {e: e.value for e in self.events if e.processed}

    def _observe(self, event: Event) -> None:
        raise NotImplementedError


class AnyOf(_Condition):
    """Fires as soon as any constituent event fires.

    The value is a dict mapping the already-triggered events to their
    values.  A failed constituent fails the condition.
    """

    __slots__ = ()

    def _observe(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.value)
        else:
            self.succeed(self._collect())


class AllOf(_Condition):
    """Fires once every constituent event has fired.

    The value maps each event to its value.  The first failure fails
    the whole condition immediately.
    """

    __slots__ = ()

    def _observe(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed(self._collect())
