"""Bucketed calendar queue for the simulation kernel.

A drop-in priority queue replacing ``heapq`` under
:class:`repro.sim.kernel.Environment`.  Entries are the kernel's
``(time, key, event)`` tuples; the total order — time, then packed
priority/eid key — is identical to the heap's, so swapping the queue
cannot reorder a single event (``tests/test_calendar_queue.py`` holds
the two implementations to byte-identical pop sequences).

Design (classic Brown calendar queue, tuned for CPython):

* A power-of-two ring of ``nb`` plain-list buckets, each covering a
  ``width``-second slice of the clock.  An entry's bucket is
  ``floor(t / width) & (nb - 1)``.
* The *current* bucket is kept sorted **descending** so the frontier
  entry is ``bucket[-1]`` and a pop is ``list.pop()`` — one C call, no
  sift.  A single ``list.sort`` (timsort, nearly-sorted input) is
  amortised over every entry in the bucket, which beats per-event heap
  sifts once buckets hold a couple dozen entries.
* Entries more than one ring revolution ahead go to an overflow heap
  (``far``) and are drained into the ring as the cursor approaches.
* The ring periodically retunes ``width``/``nb`` from the observed
  inter-pop gap (deterministically — the rebuild schedule depends only
  on the sequence of operations, never on wall time or randomness).

Correctness subtleties worth naming:

* Bucket membership is decided by ``floor(t * inv_width)`` at *push*
  time, and the pop path re-derives the same expression — it never
  compares against an accumulated float boundary, so binning can never
  disagree with itself (``cur_end += width`` drift is the classic
  calendar-queue ordering bug).
* ``pop_before(horizon)`` refuses to advance the cursor past
  ``floor(horizon / width)``.  The kernel may stop at a horizon and
  then accept pushes at any ``t >= horizon``; had the cursor advanced
  to the (later) frontier entry's bucket, those pushes could land in
  buckets behind the cursor and be missed for a full revolution.  The
  standing invariant is ``cur <= floor(now / width)`` at every point
  where user code can push.
"""

from __future__ import annotations

from heapq import heappop, heappush
from heapq import merge as _heap_merge

__all__ = ["CalendarQueue"]

_INF = float("inf")

# Target entries per bucket.  Wide buckets amortise the per-bucket
# sort over many tail pops; ~24 is the sweet spot measured on the
# kernel microbench (0.53 us/cycle vs heapq's 0.71 us).
_TARGET_PER_BUCKET = 24.0
# Structural checks run every ``_RETUNE_MASK + 1`` pops.
_RETUNE_MASK = 8191


def _floor_idx(tw: float) -> int:
    idx = int(tw)
    if idx > tw:
        idx -= 1
    return idx


class CalendarQueue:
    """Monotone priority queue of ``(time, key, payload)`` tuples."""

    __slots__ = ("buckets", "nb", "mask", "width", "inv_width", "cur",
                 "size", "dirty", "intr", "intr_t", "far",
                 "far_start_idx", "_pops", "_anchor_t", "_last_t")

    def __init__(self, start_time: float = 0.0, width: float = 0.25,
                 nb: int = 64) -> None:
        if nb <= 0 or nb & (nb - 1):
            raise ValueError(f"nb must be a power of two, got {nb}")
        if not width > 0.0:
            raise ValueError(f"width must be positive, got {width}")
        self.buckets = [[] for _ in range(nb)]
        self.nb = nb
        self.mask = nb - 1
        self.width = width
        self.inv_width = 1.0 / width
        idx = _floor_idx(start_time * self.inv_width)
        self.cur = idx
        self.size = 0            # entries in the ring (excludes far)
        self.dirty = False       # current bucket needs a re-sort
        #: Set by any push that lands in the current bucket.  The
        #: kernel's batch consumer checks it after every dispatch: a
        #: set flag means an event may have been scheduled inside the
        #: batch's time window.  ``intr_t`` carries the earliest such
        #: push time, letting the consumer decide whether the batch
        #: actually needs to go back for a re-sort: fresh pushes carry
        #: strictly larger eids than anything already queued, so they
        #: precede a pending entry only on strictly smaller *time* —
        #: ``intr_t >= max(batch times)`` means the whole batch still
        #: dispatches first and the remainder can be consumed as-is
        #: (see :meth:`take_before`).
        self.intr = False
        self.intr_t = _INF
        self.far = []            # heap of entries >= one revolution out
        self.far_start_idx = idx + nb
        self._pops = 0
        self._anchor_t = start_time
        self._last_t = start_time

    # -- write side ---------------------------------------------------

    def push(self, entry) -> None:
        """Insert one ``(time, key, payload)`` tuple."""
        tw = entry[0] * self.inv_width
        idx = int(tw)
        if idx > tw:     # true floor() for negative times
            idx -= 1
        if idx >= self.far_start_idx:
            heappush(self.far, entry)
            return
        cur = self.cur
        if idx > cur:
            self.buckets[idx & self.mask].append(entry)
            self.size += 1
            return
        # Current bucket — or behind the cursor (a horizon-bounded pop
        # may park the cursor ahead of a later push's bucket; clamping
        # into the current bucket keeps exact order, since every entry
        # elsewhere is later and the sort handles this bucket).
        b = self.buckets[cur & self.mask]
        b.append(entry)
        self.size += 1
        self.intr = True
        # A priority-0 interrupt packs to a negative key and may
        # precede *same-time* pending entries; report -inf so the
        # consumer always re-sorts.  Ordinary (priority-1) pushes
        # carry fresh maximal eids and report their true time.
        t = entry[0] if entry[1] >= 0 else -_INF
        if t < self.intr_t:
            self.intr_t = t
        if len(b) > 1:
            self.dirty = True

    def push_bulk(self, entries) -> None:
        """Insert many entries at once (numpy-binned when large).

        Equivalent to ``for e in entries: push(e)`` — bulk insertion
        affects only constant factors, never ordering.  Entries must
        carry ordinary non-negative (priority-1) keys: the bulk path
        reports the earliest inserted *time* as ``intr_t``, which is
        only sound for keys that tie-break after everything pending
        (``schedule_callback_bulk`` guarantees this).
        """
        n = len(entries)
        if n >= 64:
            import numpy as np

            tw = np.fromiter((e[0] for e in entries), np.float64,
                             count=n)
            tw *= self.inv_width
            if bool((tw < float(self.far_start_idx)).all()):
                idx = np.floor(tw).astype(np.int64)
                np.maximum(idx, self.cur, out=idx)  # behind-cursor clamp
                slots = (idx & self.mask).tolist()
                buckets = self.buckets
                for entry, slot in zip(entries, slots):
                    buckets[slot].append(entry)
                self.size += n
                # Conservative: any bulk insert may have touched the
                # current bucket; a false positive just costs a sort.
                # The earliest inserted time bounds intr_t (entries in
                # later buckets can only be later still, so using the
                # overall minimum stays safe).
                self.intr = True
                t0 = entries[int(tw.argmin())][0]
                if t0 < self.intr_t:
                    self.intr_t = t0
                if len(buckets[self.cur & self.mask]) > 1:
                    self.dirty = True
                return
        for entry in entries:
            self.push(entry)

    # -- read side ----------------------------------------------------

    def pop(self):
        """Remove and return the frontier entry; IndexError if empty."""
        entry = self.pop_before(_INF)
        if entry is None:
            raise IndexError("pop from an empty CalendarQueue")
        return entry

    def pop_before(self, horizon: float):
        """Pop the frontier entry if its time is ``< horizon``.

        Returns ``None`` when the queue is empty or the frontier is at
        or beyond ``horizon``.  This is the kernel run loop's combined
        peek+pop: one call per event instead of a peek/pop pair.
        """
        inv = self.inv_width
        mask = self.mask
        buckets = self.buckets
        cur = self.cur
        h_idx = None if horizon == _INF else _floor_idx(horizon * inv)
        while True:
            if self.size:
                b = buckets[cur & mask]
                if b:
                    if self.dirty:
                        b.sort(reverse=True)
                        self.dirty = False
                    entry = b[-1]
                    t = entry[0]
                    tw = t * inv
                    idx = int(tw)
                    if idx > tw:
                        idx -= 1
                    if idx <= cur:
                        # Frontier belongs to this revolution.
                        if t >= horizon:
                            return None
                        b.pop()
                        self.size -= 1
                        self._last_t = t
                        pops = self._pops + 1
                        self._pops = pops
                        if not pops & _RETUNE_MASK:
                            self._maybe_retune()
                        return entry
                    # Frontier of this bucket is a later revolution:
                    # fall through and advance the cursor.
            elif self.far:
                # Ring empty: jump the cursor straight at the first
                # far entry instead of walking revolutions of empty
                # buckets.
                t = self.far[0][0]
                if t >= horizon:
                    return None
                cur = _floor_idx(t * inv)
                self.cur = cur
                self.far_start_idx = cur + self.nb
                self._drain_far()
                self.dirty = len(buckets[cur & mask]) > 1
                continue
            else:
                return None
            # Advance one bucket — but never past the horizon's own
            # bucket (see module docstring).
            nxt = cur + 1
            if h_idx is not None and nxt > h_idx:
                return None
            cur = nxt
            self.cur = cur
            if self.far:
                self.far_start_idx = cur + self.nb
                if self.far[0][0] * inv < self.far_start_idx:
                    self._drain_far()
            # Entering a bucket: leftover later-revolution entries and
            # fresh appends may interleave, so assume unsorted.
            self.dirty = len(buckets[cur & mask]) > 1

    def take_before(self, horizon: float):
        """Remove and return a batch of frontier entries (descending).

        Every returned entry has time ``< horizon`` and precedes — in
        the queue's total order — every entry still stored.  This is
        the kernel run loop's bulk primitive: one Python call yields a
        whole bucket's worth of events, consumed ``batch.pop()`` at a
        time (ascending dispatch order).

        Contract: after dispatching each entry the caller must check
        :attr:`intr`; a set flag means a push may have landed inside
        the batch's remaining time window.  The caller compares
        :attr:`intr_t` against the batch *maximum* (``batch[0][0]``):
        fresh pushes always carry strictly larger eids than anything
        pending, so only a push with strictly smaller time can precede
        a batch entry.  ``intr_t >= batch[0][0]`` lets the caller
        clear the flag and keep consuming; otherwise it hands the
        remainder back via :meth:`requeue` (which restores exact
        ordering through a re-sort) and calls ``take_before`` again.
        Pushes into later buckets cannot precede any batch entry —
        floor-consistent binning puts any time beyond the current
        bucket strictly after the batch maximum — so only
        current-bucket pushes raise the flag.

        Returns ``None`` when the queue is empty or the frontier is at
        or beyond ``horizon``.
        """
        inv = self.inv_width
        mask = self.mask
        buckets = self.buckets
        cur = self.cur
        self.intr = False
        self.intr_t = _INF
        h_idx = None if horizon == _INF else _floor_idx(horizon * inv)
        while True:
            if self.size:
                slot = cur & mask
                b = buckets[slot]
                if b:
                    if self.dirty:
                        b.sort(reverse=True)
                        self.dirty = False
                    t0 = b[0][0]
                    tw = t0 * inv
                    idx0 = int(tw)
                    if idx0 > tw:
                        idx0 -= 1
                    if t0 < horizon and idx0 <= cur:
                        # Whole bucket qualifies: steal the list.
                        buckets[slot] = []
                        n = len(b)
                        self.size -= n
                        self._last_t = t0
                        pops = self._pops
                        self._pops = pops + n
                        if (pops + n) & ~_RETUNE_MASK != pops & ~_RETUNE_MASK:
                            self._maybe_retune()
                        return b
                    # Mixed bucket: split off the qualifying tail.
                    batch = []
                    while b:
                        entry = b[-1]
                        t = entry[0]
                        if t >= horizon:
                            break
                        tw = t * inv
                        idx = int(tw)
                        if idx > tw:
                            idx -= 1
                        if idx > cur:
                            break
                        b.pop()
                        batch.append(entry)
                    if batch:
                        batch.reverse()   # descending, like the ring
                        n = len(batch)
                        self.size -= n
                        self._last_t = batch[0][0]
                        pops = self._pops
                        self._pops = pops + n
                        if (pops + n) & ~_RETUNE_MASK != pops & ~_RETUNE_MASK:
                            self._maybe_retune()
                        return batch
                    t = b[-1][0]
                    tw = t * inv
                    idx = int(tw)
                    if idx > tw:
                        idx -= 1
                    if idx <= cur:
                        # Frontier is in this revolution but at or
                        # beyond the horizon.
                        return None
                    # All remaining entries belong to a later
                    # revolution: fall through and advance.
            elif self.far:
                t = self.far[0][0]
                if t >= horizon:
                    return None
                cur = _floor_idx(t * inv)
                self.cur = cur
                self.far_start_idx = cur + self.nb
                self._drain_far()
                self.dirty = len(buckets[cur & mask]) > 1
                continue
            else:
                return None
            nxt = cur + 1
            if h_idx is not None and nxt > h_idx:
                return None
            cur = nxt
            self.cur = cur
            if self.far:
                self.far_start_idx = cur + self.nb
                if self.far[0][0] * inv < self.far_start_idx:
                    self._drain_far()
            self.dirty = len(buckets[cur & mask]) > 1

    def requeue(self, batch) -> None:
        """Hand back the unconsumed (descending) tail of a batch."""
        slot = self.cur & self.mask
        b = self.buckets[slot]
        if b:
            b.extend(batch)
            self.dirty = True
            self.size += len(batch)
        else:
            self.buckets[slot] = batch
            self.size += len(batch)

    def peek_time(self) -> float:
        """Earliest scheduled time, or +inf — without mutating state."""
        best = self.far[0][0] if self.far else _INF
        if self.size:
            buckets = self.buckets
            mask = self.mask
            cur = self.cur
            seen = 0
            for off in range(self.nb):
                b = buckets[(cur + off) & mask]
                if b:
                    t = min(b)[0]
                    if t < best:
                        best = t
                    seen += len(b)
                    if seen >= self.size:
                        break
        return best

    def __len__(self) -> int:
        return self.size + len(self.far)

    def __bool__(self) -> bool:
        return bool(self.size or self.far)

    def sorted_entries(self):
        """All entries in pop order (non-destructive; for debugging)."""
        ring = sorted(e for b in self.buckets for e in b)
        return list(_heap_merge(ring, sorted(self.far)))

    # -- structural maintenance ---------------------------------------

    def _drain_far(self) -> None:
        """Move far entries now inside the ring's horizon into it."""
        far = self.far
        cut = float(self.far_start_idx)
        inv = self.inv_width
        mask = self.mask
        buckets = self.buckets
        cur = self.cur
        moved = 0
        while far and far[0][0] * inv < cut:
            entry = heappop(far)
            tw = entry[0] * inv
            idx = int(tw)
            if idx > tw:
                idx -= 1
            if idx < cur:   # behind-cursor clamp (see push)
                idx = cur
            buckets[idx & mask].append(entry)
            moved += 1
        self.size += moved

    def _maybe_retune(self) -> None:
        """Deterministic periodic width/size retune.

        The ideal width keeps ~``_TARGET_PER_BUCKET`` entries per
        bucket given the observed inter-pop gap; rebuild only on a
        >4x mismatch so steady-state workloads never pay for it.
        """
        gap = (self._last_t - self._anchor_t) / (_RETUNE_MASK + 1.0)
        self._anchor_t = self._last_t
        if gap > 0.0:
            ideal = gap * _TARGET_PER_BUCKET
            if not 0.25 < ideal / self.width < 4.0:
                n = self.size + len(self.far)
                nb = 16
                target = max(16.0, n / _TARGET_PER_BUCKET)
                while nb < target and nb < 8192:
                    nb <<= 1
                self._rebuild(ideal, nb)
                return
        if len(self.far) > 4 * self.size + 64:
            # Far-heap pressure: the ring's revolution is too short
            # for the live schedule; widen until the heap drains.
            self._rebuild(self.width * 8.0, self.nb)

    def _rebuild(self, width: float, nb: int) -> None:
        entries = [e for b in self.buckets for e in b]
        entries.extend(self.far)
        floor_t = self._last_t
        for e in entries:
            if e[0] < floor_t:
                floor_t = e[0]
        self.buckets = [[] for _ in range(nb)]
        self.nb = nb
        self.mask = nb - 1
        self.width = width
        self.inv_width = 1.0 / width
        idx = _floor_idx(floor_t * self.inv_width)
        self.cur = idx
        self.size = 0
        self.dirty = False
        self.far = []
        self.far_start_idx = idx + nb
        for entry in entries:
            self.push(entry)
        if len(self.buckets[idx & self.mask]) > 1:
            self.dirty = True
