"""Discrete-event simulation kernel.

A small, deterministic SimPy-style engine: generator processes yield
events; an environment owns the clock and the event heap.  Everything
in ``repro`` above this layer is written against these primitives.
"""

from repro.sim.events import AllOf, AnyOf, Event, Interrupt, Timeout
from repro.sim.kernel import Environment
from repro.sim.monitor import CounterMonitor, Monitor
from repro.sim.process import Process
from repro.sim.resources import Container, Request, Resource, Store
from repro.sim.rng import RandomStreams

__all__ = [
    "AllOf",
    "AnyOf",
    "Container",
    "CounterMonitor",
    "Environment",
    "Event",
    "Interrupt",
    "Monitor",
    "Process",
    "Request",
    "RandomStreams",
    "Resource",
    "Store",
    "Timeout",
]
