"""Deterministic named random streams.

Every stochastic component draws from its own named substream derived
from one master seed.  Adding a new component therefore never perturbs
the draws of existing components — experiments stay reproducible as the
system grows, and paired comparisons (coordinated vs uncoordinated
controller on *the same* workload) are exact.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["RandomStreams"]


class RandomStreams:
    """A factory of independent, reproducible numpy generators.

    >>> streams = RandomStreams(seed=7)
    >>> a = streams.get("logins")
    >>> b = streams.get("sessions")

    ``a`` and ``b`` are statistically independent, and asking for
    ``"logins"`` again returns the *same* generator object.
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """The generator for substream ``name`` (created on first use)."""
        if name not in self._streams:
            # Key the child seed on a stable hash of the name so stream
            # identity does not depend on creation order.
            child = zlib.crc32(name.encode("utf-8"))
            seq = np.random.SeedSequence(entropy=self.seed,
                                         spawn_key=(child,))
            self._streams[name] = np.random.Generator(np.random.PCG64(seq))
        return self._streams[name]

    def fork(self, offset: int) -> "RandomStreams":
        """A new stream family for replica ``offset`` (e.g. per trial)."""
        return RandomStreams(seed=self.seed * 1_000_003 + int(offset) + 1)
