"""Time-series monitors for simulation state.

A :class:`Monitor` records ``(time, value)`` samples of a piecewise-
constant signal (server power, zone temperature, queue depth, ...) and
answers the statistics the experiments need: time-weighted mean,
integral (e.g. joules from watts), maxima, and resampling onto a
regular grid for plotting and benchmark comparison.
"""

from __future__ import annotations

import bisect
import math
import typing

import numpy as np

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Environment

__all__ = ["Monitor", "CounterMonitor"]


class Monitor:
    """Record a piecewise-constant signal over simulated time.

    The signal holds its last recorded value until the next sample;
    integrals and means are computed under that step interpretation,
    which matches how the physical models emit state (power levels
    change at events, not continuously).
    """

    def __init__(self, env: "Environment", name: str = ""):
        self.env = env
        self.name = name
        self.times: list[float] = []
        self.values: list[float] = []

    def __len__(self) -> int:
        return len(self.times)

    def record(self, value: float, time: float | None = None) -> None:
        """Append a sample (defaults to the current simulation time)."""
        t = self.env.now if time is None else float(time)
        if self.times and t < self.times[-1]:
            raise ValueError(
                f"sample at t={t} precedes last sample t={self.times[-1]}")
        if self.times and t == self.times[-1]:
            # Same-instant update wins; keeps the series a function of t.
            self.values[-1] = float(value)
            return
        self.times.append(t)
        self.values.append(float(value))

    @property
    def last(self) -> float:
        """Most recent value (NaN if empty)."""
        return self.values[-1] if self.values else math.nan

    def value_at(self, time: float) -> float:
        """Signal value at ``time`` (NaN before the first sample)."""
        idx = bisect.bisect_right(self.times, time) - 1
        return self.values[idx] if idx >= 0 else math.nan

    def integral(self, start: float | None = None,
                 end: float | None = None) -> float:
        """∫ value dt over [start, end] under the step interpretation.

        With watt samples this yields joules.  ``end`` defaults to the
        current simulation time so a still-running signal integrates up
        to "now".
        """
        if not self.times:
            return 0.0
        t0 = self.times[0] if start is None else float(start)
        t1 = self.env.now if end is None else float(end)
        if t1 <= t0:
            return 0.0
        total = 0.0
        times, values = self.times, self.values
        first = max(bisect.bisect_right(times, t0) - 1, 0)
        for i in range(first, len(times)):
            if times[i] >= t1:
                break
            seg_start = max(times[i], t0)
            seg_end = times[i + 1] if i + 1 < len(times) else t1
            seg_end = min(seg_end, t1)
            if seg_end > seg_start:
                total += values[i] * (seg_end - seg_start)
        return total

    def time_weighted_mean(self, start: float | None = None,
                           end: float | None = None) -> float:
        """Mean value weighted by how long each value was held."""
        if not self.times:
            return math.nan
        t0 = self.times[0] if start is None else float(start)
        t1 = self.env.now if end is None else float(end)
        duration = t1 - t0
        if duration <= 0:
            return self.value_at(t0)
        return self.integral(t0, t1) / duration

    def maximum(self) -> float:
        """Largest recorded value (NaN if empty)."""
        return max(self.values) if self.values else math.nan

    def minimum(self) -> float:
        """Smallest recorded value (NaN if empty)."""
        return min(self.values) if self.values else math.nan

    def resample(self, step: float, start: float | None = None,
                 end: float | None = None) -> tuple[np.ndarray, np.ndarray]:
        """Sample the step signal onto a regular grid.

        Returns ``(times, values)`` arrays; convenient for comparing
        series across runs and for the benchmark tables.
        """
        if step <= 0:
            raise ValueError(f"step must be positive, got {step}")
        if not self.times:
            return np.array([]), np.array([])
        t0 = self.times[0] if start is None else float(start)
        t1 = self.env.now if end is None else float(end)
        grid = np.arange(t0, t1 + step / 2, step)
        idx = np.searchsorted(self.times, grid, side="right") - 1
        vals = np.asarray(self.values, dtype=float)
        out = np.where(idx >= 0, vals[np.clip(idx, 0, None)], np.nan)
        return grid, out

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Raw samples as numpy arrays."""
        return np.asarray(self.times), np.asarray(self.values)


class CounterMonitor(Monitor):
    """Monitor for an integer count (queue depth, active servers, ...).

    Adds :meth:`increment`/:meth:`decrement` conveniences on top of the
    plain monitor.
    """

    def __init__(self, env: "Environment", name: str = "", initial: int = 0):
        super().__init__(env, name)
        self.record(initial)

    def increment(self, by: int = 1) -> None:
        """Raise the count by ``by`` at the current time."""
        self.record(self.last + by)

    def decrement(self, by: int = 1) -> None:
        """Lower the count by ``by`` at the current time."""
        self.record(self.last - by)
