"""Time-series monitors for simulation state.

A :class:`Monitor` records ``(time, value)`` samples of a piecewise-
constant signal (server power, zone temperature, queue depth, ...) and
answers the statistics the experiments need: time-weighted mean,
integral (e.g. joules from watts), maxima, and resampling onto a
regular grid for plotting and benchmark comparison.

Storage is a pair of amortized-doubling numpy buffers plus a lazily
maintained *cumulative integral* (prefix-sum) array, so a window query
``integral(t0, t1)`` costs two ``searchsorted`` lookups instead of a
Python loop over every sample in the window — the difference between
O(n) and O(log n) for the SLA window evaluator and the PUE meter on a
multi-day fleet run.

Invariants of the prefix array ``_cum``:

* ``_cum[i]`` is the exact integral of the step signal from
  ``times[0]`` to ``times[i]`` (so ``_cum[0] == 0``).
* Entries ``[0, _cum_valid)`` are up to date; later entries are
  extended lazily (and in one vectorized ``cumsum``) on first query.
  Staged extension re-associates the sum (``c[m-1] + cumsum(...)``
  versus one long fold), so two different query schedules can differ
  in the last few ulps — but any *fixed* program queries at fixed
  points, so results are exactly reproducible run to run.
* A same-instant re-record only rewrites ``values[-1]``, which only
  affects the still-open last segment — never any completed ``_cum``
  entry — so overwrites need no invalidation.
"""

from __future__ import annotations

import math
import typing

import numpy as np

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Environment

__all__ = ["Monitor", "CounterMonitor"]

_INITIAL_CAPACITY = 64


class Monitor:
    """Record a piecewise-constant signal over simulated time.

    The signal holds its last recorded value until the next sample;
    integrals and means are computed under that step interpretation,
    which matches how the physical models emit state (power levels
    change at events, not continuously).
    """

    __slots__ = ("env", "name", "_times", "_values", "_n",
                 "_cum", "_cum_valid")

    def __init__(self, env: "Environment", name: str = ""):
        self.env = env
        self.name = name
        self._times = np.empty(_INITIAL_CAPACITY)
        self._values = np.empty(_INITIAL_CAPACITY)
        self._n = 0
        self._cum = np.empty(_INITIAL_CAPACITY)
        self._cum_valid = 0

    def __len__(self) -> int:
        return self._n

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(self, value: float, time: float | None = None) -> None:
        """Append a sample (defaults to the current simulation time)."""
        t = self.env.now if time is None else float(time)
        n = self._n
        if n:
            last_t = self._times[n - 1]
            if t < last_t:
                raise ValueError(
                    f"sample at t={t} precedes last sample t={last_t}")
            if t == last_t:
                # Same-instant update wins; keeps the series a function
                # of t.  Only the open last segment changes, so the
                # prefix array stays valid (see module docstring).
                self._values[n - 1] = value
                return
        if n == len(self._times):
            self._grow()
        self._times[n] = t
        self._values[n] = value
        self._n = n + 1

    def _grow(self) -> None:
        capacity = 2 * len(self._times)
        for attr in ("_times", "_values", "_cum"):
            new = np.empty(capacity)
            old = getattr(self, attr)
            new[:len(old)] = old
            setattr(self, attr, new)

    # ------------------------------------------------------------------
    # Raw access (read-only views of the live buffers)
    # ------------------------------------------------------------------
    @property
    def times(self) -> np.ndarray:
        """Sample times as a read-only array view."""
        view = self._times[:self._n]
        view.flags.writeable = False
        return view

    @property
    def values(self) -> np.ndarray:
        """Sample values as a read-only array view."""
        view = self._values[:self._n]
        view.flags.writeable = False
        return view

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Raw samples as (owned) numpy arrays."""
        return self._times[:self._n].copy(), self._values[:self._n].copy()

    @property
    def last(self) -> float:
        """Most recent value (NaN if empty)."""
        n = self._n
        return float(self._values[n - 1]) if n else math.nan

    def value_at(self, time: float) -> float:
        """Signal value at ``time`` (NaN before the first sample)."""
        idx = int(np.searchsorted(self._times[:self._n], time,
                                  side="right")) - 1
        return float(self._values[idx]) if idx >= 0 else math.nan

    # ------------------------------------------------------------------
    # Windowed statistics
    # ------------------------------------------------------------------
    def _extend_cum(self) -> None:
        """Bring the prefix-integral array up to the newest sample."""
        n, m = self._n, self._cum_valid
        if m >= n:
            return
        t, v, c = self._times, self._values, self._cum
        if m == 0:
            c[0] = 0.0
            m = 1
        segments = v[m - 1:n - 1] * (t[m:n] - t[m - 1:n - 1])
        c[m:n] = c[m - 1] + np.cumsum(segments)
        self._cum_valid = n

    def _cum_at(self, x: float) -> float:
        """Integral of the signal from ``times[0]`` to ``x`` (clamped:
        zero for ``x`` at or before the first sample)."""
        times = self._times[:self._n]
        idx = int(np.searchsorted(times, x, side="right")) - 1
        if idx < 0:
            return 0.0
        return float(self._cum[idx]
                     + self._values[idx] * (x - times[idx]))

    def integral(self, start: float | None = None,
                 end: float | None = None) -> float:
        """∫ value dt over [start, end] under the step interpretation.

        With watt samples this yields joules.  ``end`` defaults to the
        current simulation time so a still-running signal integrates up
        to "now"; ``start`` defaults to the first sample.  Time before
        the first sample contributes nothing (the signal is undefined
        there).
        """
        n = self._n
        if n == 0:
            return 0.0
        t0 = self._times[0] if start is None else float(start)
        t1 = self.env.now if end is None else float(end)
        if t1 <= t0:
            return 0.0
        self._extend_cum()
        return self._cum_at(t1) - self._cum_at(t0)

    def time_weighted_mean(self, start: float | None = None,
                           end: float | None = None) -> float:
        """Mean value weighted by how long each value was held."""
        if self._n == 0:
            return math.nan
        t0 = self._times[0] if start is None else float(start)
        t1 = self.env.now if end is None else float(end)
        duration = t1 - t0
        if duration <= 0:
            return self.value_at(t0)
        return self.integral(t0, t1) / duration

    def maximum(self) -> float:
        """Largest recorded value (NaN if empty)."""
        n = self._n
        return float(self._values[:n].max()) if n else math.nan

    def minimum(self) -> float:
        """Smallest recorded value (NaN if empty)."""
        n = self._n
        return float(self._values[:n].min()) if n else math.nan

    def resample(self, step: float, start: float | None = None,
                 end: float | None = None) -> tuple[np.ndarray, np.ndarray]:
        """Sample the step signal onto a regular grid.

        Returns ``(times, values)`` arrays; convenient for comparing
        series across runs and for the benchmark tables.
        """
        if step <= 0:
            raise ValueError(f"step must be positive, got {step}")
        n = self._n
        if n == 0:
            return np.array([]), np.array([])
        t0 = self._times[0] if start is None else float(start)
        t1 = self.env.now if end is None else float(end)
        grid = np.arange(t0, t1 + step / 2, step)
        idx = np.searchsorted(self._times[:n], grid, side="right") - 1
        out = np.where(idx >= 0, self._values[np.clip(idx, 0, None)], np.nan)
        return grid, out


class CounterMonitor(Monitor):
    """Monitor for an integer count (queue depth, active servers, ...).

    Adds :meth:`increment`/:meth:`decrement` conveniences on top of the
    plain monitor.
    """

    __slots__ = ()

    def __init__(self, env: "Environment", name: str = "", initial: int = 0):
        super().__init__(env, name)
        self.record(initial)

    def increment(self, by: int = 1) -> None:
        """Raise the count by ``by`` at the current time."""
        self.record(self.last + by)

    def decrement(self, by: int = 1) -> None:
        """Lower the count by ``by`` at the current time."""
        self.record(self.last - by)
