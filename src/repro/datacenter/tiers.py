"""Uptime Institute tier classification (paper §2.1, citing [6]).

    "A tier-2 data center, providing 99.741% availability, is typical
    for hosting Internet services."

The tier determines redundancy of power and cooling paths, which the
spec builder translates into UPS margin and CRAC count.
"""

from __future__ import annotations

import dataclasses
import enum

__all__ = ["Tier", "TierSpec", "TIER_SPECS"]

_HOURS_PER_YEAR = 8766.0


class Tier(enum.Enum):
    """Uptime Institute site-infrastructure tiers."""

    I = 1
    II = 2
    III = 3
    IV = 4


@dataclasses.dataclass(frozen=True)
class TierSpec:
    """Availability and redundancy implied by a tier."""

    tier: Tier
    availability: float
    redundancy: str
    power_paths: int
    concurrent_maintainable: bool

    @property
    def downtime_hours_per_year(self) -> float:
        """Expected annual downtime at the rated availability."""
        return (1.0 - self.availability) * _HOURS_PER_YEAR

    def ups_margin(self) -> float:
        """Capacity margin the spec builder applies to the UPS.

        N (tier I) gets no margin; N+1 (II, III) gets one extra
        module's worth (~25 % at typical module counts); 2N (IV)
        doubles it.
        """
        if self.redundancy == "N":
            return 1.0
        if self.redundancy == "N+1":
            return 1.25
        return 2.0


TIER_SPECS: dict[Tier, TierSpec] = {
    Tier.I: TierSpec(Tier.I, availability=0.99671, redundancy="N",
                     power_paths=1, concurrent_maintainable=False),
    Tier.II: TierSpec(Tier.II, availability=0.99741, redundancy="N+1",
                      power_paths=1, concurrent_maintainable=False),
    Tier.III: TierSpec(Tier.III, availability=0.99982, redundancy="N+1",
                       power_paths=2, concurrent_maintainable=True),
    Tier.IV: TierSpec(Tier.IV, availability=0.99995, redundancy="2N",
                      power_paths=2, concurrent_maintainable=True),
}
