"""Monte-Carlo availability of tiered facilities (paper §2.1, [6]).

    "A tier-2 data center, providing 99.741 % availability, is typical
    for hosting Internet services."

The Uptime Institute's tier availabilities are empirical aggregates;
this module reconstructs them from a component model with three
downtime sources, so the *mechanism* behind the numbers is visible
and ablatable:

* **planned maintenance** — tiers that are not concurrently
  maintainable must shut down for upkeep;
* **utility outages** — survived only if the UPS bridges to a
  successfully started generator (redundant paths raise the survival
  probability);
* **internal faults** — single-component failures, masked with some
  probability by N+1 / 2N redundancy.

Default parameters are calibrated so each tier's simulated annual
downtime lands near the published figure (tier I ≈ 28.8 h,
II ≈ 22.7 h, III ≈ 1.6 h, IV ≈ 0.4 h).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.datacenter.tiers import Tier

__all__ = ["AvailabilityParameters", "AvailabilityEstimate",
           "AvailabilityModel", "TIER_AVAILABILITY_PARAMETERS"]

_HOURS_PER_YEAR = 8766.0


@dataclasses.dataclass(frozen=True)
class AvailabilityParameters:
    """Component-level reliability knobs for one facility design."""

    planned_maintenance_h_per_year: float
    grid_outages_per_year: float
    grid_outage_mean_h: float
    outage_survival_probability: float
    internal_faults_per_year: float
    internal_repair_h: float
    internal_masked_probability: float

    def __post_init__(self):
        probs = (self.outage_survival_probability,
                 self.internal_masked_probability)
        for p in probs:
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"probability {p} outside [0, 1]")
        rates = (self.planned_maintenance_h_per_year,
                 self.grid_outages_per_year, self.grid_outage_mean_h,
                 self.internal_faults_per_year, self.internal_repair_h)
        if any(r < 0 for r in rates):
            raise ValueError("rates and durations cannot be negative")


#: Calibrated to the Uptime Institute downtime table (see module doc).
TIER_AVAILABILITY_PARAMETERS: dict[Tier, AvailabilityParameters] = {
    Tier.I: AvailabilityParameters(
        planned_maintenance_h_per_year=23.3,
        grid_outages_per_year=5.0, grid_outage_mean_h=2.0,
        outage_survival_probability=0.85,
        internal_faults_per_year=1.0, internal_repair_h=4.0,
        internal_masked_probability=0.0),
    Tier.II: AvailabilityParameters(
        planned_maintenance_h_per_year=20.0,
        grid_outages_per_year=5.0, grid_outage_mean_h=2.0,
        outage_survival_probability=0.93,
        internal_faults_per_year=1.0, internal_repair_h=4.0,
        internal_masked_probability=0.50),
    Tier.III: AvailabilityParameters(
        planned_maintenance_h_per_year=0.0,
        grid_outages_per_year=5.0, grid_outage_mean_h=2.0,
        outage_survival_probability=0.985,
        internal_faults_per_year=1.0, internal_repair_h=4.0,
        internal_masked_probability=0.65),
    Tier.IV: AvailabilityParameters(
        planned_maintenance_h_per_year=0.0,
        grid_outages_per_year=5.0, grid_outage_mean_h=2.0,
        outage_survival_probability=0.998,
        internal_faults_per_year=1.0, internal_repair_h=4.0,
        internal_masked_probability=0.92),
}


@dataclasses.dataclass(frozen=True)
class AvailabilityEstimate:
    """Result of a Monte-Carlo availability run."""

    availability: float
    downtime_h_per_year: float
    downtime_breakdown_h: dict
    years_simulated: int


class AvailabilityModel:
    """Monte-Carlo annual downtime for an
    :class:`AvailabilityParameters` design."""

    def __init__(self, parameters: AvailabilityParameters, seed: int = 0):
        self.parameters = parameters
        self._rng = np.random.default_rng(seed)

    def simulate(self, years: int = 2_000) -> AvailabilityEstimate:
        """Simulate ``years`` independent years; aggregate downtime."""
        if years < 1:
            raise ValueError("need at least one year")
        p = self.parameters
        rng = self._rng

        maintenance_h = p.planned_maintenance_h_per_year * years

        grid_events = rng.poisson(p.grid_outages_per_year * years)
        survived = rng.random(grid_events) < p.outage_survival_probability
        durations = rng.lognormal(np.log(p.grid_outage_mean_h) - 0.5,
                                  1.0, size=grid_events)
        grid_h = float(durations[~survived].sum())

        internal_events = rng.poisson(p.internal_faults_per_year * years)
        masked = rng.random(internal_events) < p.internal_masked_probability
        repairs = rng.exponential(p.internal_repair_h,
                                  size=internal_events)
        internal_h = float(repairs[~masked].sum())

        total_h = maintenance_h + grid_h + internal_h
        per_year = total_h / years
        return AvailabilityEstimate(
            availability=1.0 - per_year / _HOURS_PER_YEAR,
            downtime_h_per_year=per_year,
            downtime_breakdown_h={
                "maintenance": maintenance_h / years,
                "grid": grid_h / years,
                "internal": internal_h / years,
            },
            years_simulated=years,
        )

    @classmethod
    def for_tier(cls, tier: Tier, seed: int = 0) -> "AvailabilityModel":
        """Model with the calibrated parameters of ``tier``."""
        return cls(TIER_AVAILABILITY_PARAMETERS[tier], seed=seed)
