"""Declarative data-center specification and builder.

One :class:`DataCenterSpec` describes a whole facility; ``build()``
wires every substrate together — servers into zoned racks, racks onto
a tier-sized power tree and UPS, zones and CRACs into a machine room
with a locality-derived sensitivity matrix — and returns a
:class:`DataCenter` handle holding all of it.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.cluster.rack import Cluster, Rack
from repro.cluster.server import Server
from repro.cooling.crac import CRACUnit
from repro.cooling.economizer import AirSideEconomizer
from repro.cooling.room import MachineRoom
from repro.cooling.weather import SEATTLE_LIKE, WeatherModel
from repro.cooling.zone import ThermalZone
from repro.datacenter.tiers import Tier, TIER_SPECS, TierSpec
from repro.power.distribution import (
    CapacityExceeded,
    PDU_EFFICIENCY,
    PowerNode,
    TRANSFORMER_EFFICIENCY,
    UPS_DOUBLE_CONVERSION_EFFICIENCY,
)
from repro.power.models import ServerPowerModel
from repro.power.pue import PUEAccountant
from repro.power.ups import UPSUnit
from repro.sim import Environment

__all__ = ["DataCenterSpec", "DataCenter"]


@dataclasses.dataclass
class DataCenterSpec:
    """Everything needed to instantiate a facility."""

    name: str = "dc"
    tier: Tier = Tier.II
    racks: int = 8
    servers_per_rack: int = 20
    server_peak_w: float = 300.0
    server_idle_fraction: float = 0.6
    #: Exponent ``r`` of the Fan-et-al. calibrated power curve
    #: (1.0 = linear).  The vector backend evaluates non-linear models
    #: through its grouped libm-pow kernel — still batched, still
    #: bit-identical to the scalar model.
    server_nonlinearity: float = 1.0
    server_capacity: float = 100.0
    boot_s: float = 120.0
    wake_s: float = 15.0
    zones: int = 4
    cracs: int = 2
    crac_setpoint_c: float = 24.0
    zone_conductance_w_per_k: float = 4_000.0
    cross_conductance_fraction: float = 0.15
    #: Reject heat through an air-side economizer (§2.2) instead of a
    #: pure chilled-water plant; needs a weather model.
    economizer: bool = False
    weather: WeatherModel | None = None
    #: Plant storage layout.  ``"object"`` (default) keeps one Python
    #: ``Server`` per machine; ``"vector"`` backs the fleet with the
    #: structure-of-arrays :mod:`repro.fleet` plant — bit-identical
    #: results, built for 10⁴–10⁵-server co-simulations.
    backend: str = "object"

    def __post_init__(self):
        if self.backend not in ("object", "vector"):
            raise ValueError(
                f"backend must be 'object' or 'vector', got {self.backend!r}")
        if self.racks < 1 or self.servers_per_rack < 1:
            raise ValueError("need at least one rack and one server")
        if self.zones < 1 or self.cracs < 1:
            raise ValueError("need at least one zone and one CRAC")
        if self.zones > self.racks:
            raise ValueError("cannot have more zones than racks")
        if not 0.0 <= self.cross_conductance_fraction <= 1.0:
            raise ValueError("cross conductance fraction in [0, 1]")

    @property
    def total_servers(self) -> int:
        return self.racks * self.servers_per_rack

    def build(self, env: Environment) -> "DataCenter":
        """Instantiate the full facility on ``env``."""
        tier_spec = TIER_SPECS[self.tier]
        model = ServerPowerModel(peak_w=self.server_peak_w,
                                 idle_fraction=self.server_idle_fraction,
                                 nonlinearity=self.server_nonlinearity)

        # --- compute: servers -> zoned racks -> cluster --------------
        fleet = None
        if self.backend == "vector":
            from repro.fleet import VectorCluster, VectorFleet
            fleet = VectorFleet(env, self.total_servers)
        racks = []
        servers: list[Server] = []
        for r in range(self.racks):
            zone_name = f"zone-{r % self.zones}"
            if fleet is not None:
                # One shared model: every server is identical anyway,
                # so they all land in a single model group (the fused
                # single-pass batch kernel) and the whole rack is one
                # bulk row claim.
                rack_servers = fleet.build_servers(
                    env,
                    [f"{self.name}-r{r}-s{s}"
                     for s in range(self.servers_per_rack)],
                    power_model=model,
                    capacity=self.server_capacity,
                    boot_s=self.boot_s, wake_s=self.wake_s)
            else:
                rack_servers = [
                    Server(env, f"{self.name}-r{r}-s{s}",
                           power_model=ServerPowerModel(
                               peak_w=self.server_peak_w,
                               idle_fraction=self.server_idle_fraction,
                               nonlinearity=self.server_nonlinearity),
                           capacity=self.server_capacity,
                           boot_s=self.boot_s, wake_s=self.wake_s)
                    for s in range(self.servers_per_rack)]
            servers.extend(rack_servers)
            racks.append(Rack(f"{self.name}-rack{r}", rack_servers,
                              zone=zone_name))
        cluster = (VectorCluster(self.name, racks) if fleet is not None
                   else Cluster(self.name, racks))

        # --- power: tree + UPS sized by tier --------------------------
        rack_peak_w = self.servers_per_rack * self.server_peak_w
        critical_w = self.racks * rack_peak_w
        ups_rating = critical_w * tier_spec.ups_margin()
        transformer = PowerNode("transformer", ups_rating * 1.2,
                                TRANSFORMER_EFFICIENCY)
        ups_node = transformer.add_child(
            PowerNode("ups", ups_rating,
                      UPS_DOUBLE_CONVERSION_EFFICIENCY))
        pdu = ups_node.add_child(
            PowerNode("pdu", critical_w * 1.1, PDU_EFFICIENCY))
        rack_nodes = {}
        for rack in racks:
            rack_nodes[rack.name] = pdu.add_child(
                PowerNode(rack.name, rack_peak_w * 1.2))
        ups = UPSUnit(env, f"{self.name}-ups",
                      steady_rating_w=ups_rating,
                      battery_energy_j=ups_rating * 300.0)

        # --- cooling: zones + CRACs with locality ---------------------
        zones = [ThermalZone(f"zone-{z}",
                             thermal_capacitance_j_per_k=600_000.0)
                 for z in range(self.zones)]
        cracs = [CRACUnit(f"{self.name}-crac{c}",
                          return_setpoint_c=self.crac_setpoint_c)
                 for c in range(self.cracs)]
        # Each zone couples strongly to its "home" CRAC and weakly to
        # the rest — physical locality is what makes sensitivity
        # matrices non-uniform in real rooms.
        strong = self.zone_conductance_w_per_k
        weak = strong * self.cross_conductance_fraction
        conductance = [[strong if (z % self.cracs) == c else weak
                        for c in range(self.cracs)]
                       for z in range(self.zones)]
        room = MachineRoom(env, zones, cracs, conductance)

        economizer = None
        weather = None
        if self.economizer:
            economizer = AirSideEconomizer()
            weather = self.weather or SEATTLE_LIKE()

        return DataCenter(env=env, spec=self, tier_spec=tier_spec,
                          cluster=cluster, servers=servers,
                          power_tree=transformer, rack_nodes=rack_nodes,
                          ups=ups, room=room,
                          pue=PUEAccountant(env),
                          economizer=economizer, weather=weather)


@dataclasses.dataclass
class DataCenter:
    """A fully-wired facility (returned by :meth:`DataCenterSpec.build`)."""

    env: Environment
    spec: DataCenterSpec
    tier_spec: TierSpec
    cluster: Cluster
    servers: list
    power_tree: PowerNode
    rack_nodes: dict
    ups: UPSUnit
    room: MachineRoom
    pue: PUEAccountant
    economizer: AirSideEconomizer | None = None
    weather: WeatherModel | None = None
    #: Lazily-built fast-path handle for the canonical power tree
    #: (see :meth:`_tree_fast_path`).  ``None`` before the first
    #: physical tick; ``()`` when the shape check failed.
    _tree_fast: tuple | None = dataclasses.field(
        default=None, init=False, repr=False, compare=False)

    def _tree_fast_path(self) -> tuple | None:
        """Cache the spec's canonical transformer→UPS→PDU→leaf chain.

        The builder always produces this shape: a three-node spine
        whose PDU fans out to one identity-efficiency leaf per rack,
        in rack order.  When it holds, :meth:`sync_physical` can fold
        the whole tree in one pass — leaf input equals leaf demand
        exactly (efficiency 1.0), the three spine stages are scalar —
        instead of recursing node-by-node twice per tick.  Any
        restructured tree (extra children, strict or lossy leaves)
        returns ``None`` and keeps the generic recursive walk.
        """
        fast = self._tree_fast
        if fast is not None:
            return fast or None
        root = self.power_tree
        racks = self.cluster.racks
        spine_ok = (len(root.children) == 1
                    and len(root.children[0].children) == 1)
        if spine_ok:
            ups_node = root.children[0]
            pdu = ups_node.children[0]
            leaves = pdu.children
            leaf_ok = (len(leaves) == len(racks) and all(
                leaf is self.rack_nodes.get(rack.name)
                and not leaf.children and not leaf.strict
                and len(leaf.efficiency.knots) == 1
                and leaf.efficiency.knots[0][1] == 1.0
                for leaf, rack in zip(leaves, racks)))
            if leaf_ok:
                # Leaf state (``_leaf_demand_w``, ``failed``) lives in
                # plain instance dicts; binding them here turns the
                # per-tick store loop into raw dict writes.
                self._tree_fast = (ups_node, pdu, leaves,
                                   [leaf.__dict__ for leaf in leaves])
                return self._tree_fast
        self._tree_fast = ()
        return None

    @staticmethod
    def _stage_in(node: PowerNode, out_w: float) -> float:
        """``PowerNode.input_w`` arithmetic with the output pre-folded."""
        if node.failed or out_w == 0.0:
            return 0.0
        load_fraction = out_w / node.capacity_w
        if node.strict and load_fraction > 1.0:
            raise CapacityExceeded(node, out_w)
        return out_w / node.efficiency(load_fraction)

    def sync_physical(self) -> dict:
        """Push current compute state into the physical models.

        Sets rack demands on the power tree, heat loads on the zones,
        updates the UPS, and records a PUE sample.  Returns a snapshot
        dict for convenience.  The co-simulation harness calls this
        every tick; it is also handy interactively.
        """
        # Power tree leaves <- rack draws.
        fast = self._tree_fast_path()
        if fast is not None:
            ups_node, pdu, leaves, leaf_dicts = fast
            arr_fn = getattr(self.cluster, "rack_powers_array", None)
            demands_arr = arr_fn() if arr_fn is not None else None
            demands = (demands_arr.tolist() if demands_arr is not None
                       else self.cluster.rack_powers())
            # One fused pass: leaf input == leaf demand (identity
            # efficiency, exact), folded left-to-right in child order
            # — bit-identical to the recursive walk it replaces.  The
            # common no-failed-leaves case folds with one cumsum (the
            # same sequential left fold); any tripped leaf drops to
            # the skip-aware scalar fold.
            clean = True
            for d, watts in zip(leaf_dicts, demands):
                d["_leaf_demand_w"] = watts
                if d["failed"]:
                    clean = False
            if clean:
                if demands_arr is None:
                    demands_arr = np.asarray(demands)
                pdu_out = (float(np.cumsum(demands_arr)[-1])
                           if demands else 0.0)
            else:
                pdu_out = 0.0
                for leaf, watts in zip(leaves, demands):
                    if not leaf.failed:
                        pdu_out += watts
            if pdu.failed:
                pdu_out = 0.0
            pdu_in = self._stage_in(pdu, pdu_out)
            ups_out = 0.0 if ups_node.failed else pdu_in
            ups_in = self._stage_in(ups_node, ups_out)
            grid_w = self._stage_in(self.power_tree, ups_in)
            it_w = self.cluster.power_w()
            loss_w = grid_w - it_w
            self.ups.set_load(ups_out)
        else:
            for rack in self.cluster.racks:
                self.rack_nodes[rack.name].set_demand(rack.power_w())
            it_w = self.cluster.power_w()
            grid_w = self.power_tree.input_w()
            loss_w = grid_w - it_w
            self.ups.set_load(self.power_tree.find("ups").output_w())

        # Zones <- heat by zone (IT heat + its share of losses lands
        # in the room; distribution losses heat electrical rooms and
        # are cooled too, but we attribute them to the plant load).
        heat = self.cluster.heat_by_zone()
        for zone in self.room.zones:
            zone.set_heat_load(heat.get(zone.name, 0.0))
        if self.economizer is not None:
            # Air-side heat rejection: the CRAC blowers still move the
            # air, but the heat leaves via outside air / trimmed
            # chiller per the economizer mode.
            temps = self.room.zone_temps()
            removed = sum(self.room.heat_removed_w(j, temps)
                          for j in range(len(self.room.cracs)))
            now = self.env.now
            mechanical_w = self.economizer.mechanical_power_w(
                removed, self.weather.temperature_c(now),
                self.weather.relative_humidity(now), time_s=now)
        else:
            mechanical_w = self.room.mechanical_power_w()
        pue = self.pue.record(it_w=it_w, distribution_loss_w=loss_w,
                              mechanical_w=mechanical_w)
        return {"it_w": it_w, "grid_w": grid_w, "loss_w": loss_w,
                "mechanical_w": mechanical_w, "pue": pue}
