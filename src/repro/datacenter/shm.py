"""Zero-copy shard fabric: seqlock lanes in shared memory.

The sharded plant and the federation exchange tiny fixed-dtype
payloads every macro period — a demand-share vector down, a capacity
or telemetry column up.  Pickling those tuples through a
:func:`multiprocessing.Pipe` costs a serialize/copy/deserialize per
period per worker; at 10⁵–10⁶ servers the exchange happens thousands
of times per simulated day.  This module gives each worker group one
:mod:`multiprocessing.shared_memory` block of named float64 *lanes*
so both sides write and read the columns in place, and the pipe
carries only control tokens (``advance`` / ``ok`` / ``error``) plus
everything that must stay replayable (the checkpoint log, crash
reports, the final result pickle).

Seqlock/epoch protocol
----------------------
Each lane owns one int64 sequence word in the block header.  A writer
publishing epoch ``e`` (epochs are 1-based macro-period counters):

1. stores ``2e - 1`` (odd: write in progress),
2. copies the payload into the lane's float64 region,
3. stores ``2e`` (even: epoch ``e`` published).

A reader wanting epoch ``e`` spins (with a deadline) until the word
equals ``2e``, copies the payload out, and re-checks the word; a
changed word means the copy may be torn, so it re-reads.  Epochs are
*absolute*, not incremented from whatever the previous writer left
behind: a respawned worker replaying its log rewrites the same lanes
at the same epochs deterministically, which is exactly what the
federation's restart-and-replay path needs.

In the lockstep drivers the pipe ack already orders writer before
reader, so the seqlock never spins in practice — it is the safety
layer that turns a protocol bug or torn read into a loud
:class:`ShmLaneTimeout` instead of silent corruption.

Lifecycle
---------
The parent creates the block (:meth:`FabricBlock.create`) and is the
*owner*: closing an owner block also unlinks the segment from
``/dev/shm``.  Workers attach by name (:meth:`FabricBlock.attach`)
and deregister from the resource tracker — the parent's registration
is the canonical one, so a worker dying (even by SIGKILL) cannot
leak or prematurely destroy the segment.  ``close`` is idempotent
and also runs from ``__del__`` as a last resort; drivers still close
in ``try/finally`` so KeyboardInterrupt and crash paths unlink
deterministically.
"""

from __future__ import annotations

import os
import time
import typing

import numpy as np

__all__ = [
    "shm_available",
    "ShmLaneClosed",
    "ShmLaneTimeout",
    "ShmLane",
    "FabricBlock",
]

#: Environment switch: any value other than ""/"0" forces the Pipe
#: payload fallback (satellite: the fallback path must stay testable).
NO_SHM_ENV = "REPRO_NO_SHM"


def shm_available() -> bool:
    """Whether the shared-memory transport may be used right now.

    False when ``REPRO_NO_SHM`` is set (to anything but ``0``) or the
    stdlib :mod:`multiprocessing.shared_memory` module is missing
    (minimal builds without ``_posixshmem``).  Checked at run start,
    so a test can flip the environment between runs in-process.
    """
    if os.environ.get(NO_SHM_ENV, "") not in ("", "0"):
        return False
    try:
        from multiprocessing import shared_memory  # noqa: F401
    except ImportError:  # pragma: no cover - stdlib always has it here
        return False
    return True


class ShmLaneClosed(RuntimeError):
    """A lane was used after its fabric block was closed."""


class ShmLaneTimeout(RuntimeError):
    """A lane read did not observe its target epoch within the deadline.

    Either the writer never published (dead worker, protocol bug) or
    every observed copy was torn by a concurrent write — both mean
    the exchanged column cannot be trusted, so the driver's crash
    handling takes over.
    """


class ShmLane:
    """One seqlock-protected float64 column inside a :class:`FabricBlock`.

    Writers normally call :meth:`write`; :meth:`begin_write` /
    :meth:`publish` are exposed separately so tests can hold a lane
    torn open and prove the reader refuses the partial payload.
    """

    __slots__ = ("name", "_seq", "_data")

    def __init__(self, name: str, seq: np.ndarray, data: np.ndarray):
        self.name = name
        self._seq = seq
        self._data = data

    @property
    def size(self) -> int:
        """Number of float64 slots in the lane."""
        return self._views()[1].shape[0]

    def _views(self) -> tuple[np.ndarray, np.ndarray]:
        if self._seq is None:
            raise ShmLaneClosed(
                f"lane {self.name!r} used after its block was closed")
        return self._seq, self._data

    def begin_write(self, epoch: int) -> None:
        """Mark epoch ``epoch`` as write-in-progress (odd seq word)."""
        seq, _ = self._views()
        seq[0] = 2 * epoch - 1

    def publish(self, epoch: int) -> None:
        """Mark epoch ``epoch`` as published (even seq word)."""
        seq, _ = self._views()
        seq[0] = 2 * epoch

    def write(self, epoch: int, values) -> None:
        """Publish ``values`` as epoch ``epoch`` under the seqlock."""
        seq, data = self._views()
        seq[0] = 2 * epoch - 1
        data[:] = values
        seq[0] = 2 * epoch

    def read(self, epoch: int, deadline_s: float = 30.0) -> np.ndarray:
        """A stable copy of epoch ``epoch``'s payload.

        Spins until the sequence word equals ``2 * epoch`` both before
        and after the copy (otherwise the copy may interleave with a
        write and is discarded).  Raises :class:`ShmLaneTimeout` after
        ``deadline_s`` wall seconds.
        """
        seq, data = self._views()
        target = 2 * epoch
        deadline = time.monotonic() + float(deadline_s)
        while True:
            if int(seq[0]) == target:
                out = data.copy()
                if int(seq[0]) == target:
                    return out
            if time.monotonic() >= deadline:
                # Clear the array locals before raising: the traceback
                # keeps this frame alive, and a lingering view would
                # make the block's close() fail with "cannot close
                # exported pointers exist".
                observed = int(seq[0])
                seq = data = out = None
                raise ShmLaneTimeout(
                    f"lane {self.name!r}: epoch {epoch} not published "
                    f"within {deadline_s:.0f}s (seq={observed}, "
                    f"want {target})")
            time.sleep(0.0005)

    def _drop(self) -> None:
        """Release the numpy views so the block's buffer can close."""
        self._seq = None
        self._data = None


class FabricBlock:
    """One shared-memory block holding named seqlock lanes.

    Layout: one int64 sequence word per lane (in declaration order),
    then each lane's float64 payload region, concatenated.  Both
    sides build the same views from the same ``layout`` — a sequence
    of ``(lane name, float64 count)`` pairs — so no lengths or
    offsets ever cross the pipe.
    """

    __slots__ = ("name", "_shm", "_lanes", "_owner", "_closed",
                 "__weakref__")

    def __init__(self, shm, layout: typing.Sequence[tuple[str, int]],
                 owner: bool):
        self._shm = shm
        self.name = shm.name
        self._owner = bool(owner)
        self._closed = False
        self._lanes: dict[str, ShmLane] = {}
        n_lanes = len(layout)
        seq_words = np.frombuffer(shm.buf, dtype=np.int64,
                                  count=n_lanes, offset=0)
        offset = n_lanes * 8
        for k, (lane_name, count) in enumerate(layout):
            data = np.frombuffer(shm.buf, dtype=np.float64,
                                 count=int(count), offset=offset)
            self._lanes[lane_name] = ShmLane(
                lane_name, seq_words[k:k + 1], data)
            offset += int(count) * 8

    @staticmethod
    def _nbytes(layout: typing.Sequence[tuple[str, int]]) -> int:
        return (len(layout) + sum(int(c) for _, c in layout)) * 8

    @classmethod
    def create(cls, layout: typing.Sequence[tuple[str, int]]
               ) -> "FabricBlock":
        """Allocate and zero a new block; the caller becomes owner."""
        from multiprocessing import shared_memory
        shm = shared_memory.SharedMemory(
            create=True, size=max(8, cls._nbytes(layout)))
        block = cls(shm, layout, owner=True)
        for lane in block._lanes.values():
            lane._seq[0] = 0  # no epoch published yet
        return block

    @classmethod
    def attach(cls, name: str,
               layout: typing.Sequence[tuple[str, int]]) -> "FabricBlock":
        """Attach to an existing block by name (worker side).

        Under the ``fork`` start method (this repo's workers) the
        resource-tracker daemon is shared with the parent, so the
        attach-time registration is a set no-op and the owner's
        ``unlink`` clears it exactly once.  Under ``spawn`` the child
        has its *own* tracker, whose registration would unlink the
        segment when the child exits first — deregister there, the
        parent's registration is the canonical one.
        """
        import multiprocessing
        from multiprocessing import shared_memory
        shm = shared_memory.SharedMemory(name=name)
        if multiprocessing.get_start_method(allow_none=True) == "spawn":
            try:  # pragma: no cover - fork is the default here
                from multiprocessing import resource_tracker
                resource_tracker.unregister(shm._name, "shared_memory")
            except Exception:
                pass
        return cls(shm, layout, owner=False)

    def lane(self, name: str) -> ShmLane:
        return self._lanes[name]

    def close(self) -> None:
        """Release the mapping; owners also unlink the segment.

        Idempotent.  Every lane is dropped first (reuse afterwards
        raises :class:`ShmLaneClosed`), releasing the buffer exports
        so ``SharedMemory.close`` can unmap.
        """
        if self._closed:
            return
        self._closed = True
        for lane in self._lanes.values():
            lane._drop()
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - stray external view
            # Someone still holds a view (e.g. an exception traceback
            # pinning a frame).  The mapping then lives until process
            # exit — but the unlink below must still happen, or the
            # owner leaks the segment in /dev/shm.
            pass
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __del__(self):  # pragma: no cover - GC-order dependent
        try:
            self.close()
        except Exception:
            pass

    def __enter__(self) -> "FabricBlock":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
