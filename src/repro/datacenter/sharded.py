"""Zone-sharded parallel plants: one facility split across cores.

A 10⁵-server day is embarrassingly parallel *between* thermal zones:
racks heat only their own zone, zones couple only to their CRACs, and
the farm's dispatch treats capacity as a fungible pool.  This module
exploits that structure by partitioning one :class:`DataCenterSpec`
into ``shards`` self-similar sub-facilities (each takes a contiguous
block of zones plus every rack and a proportional slice of CRACs and
UPS capacity) and co-simulating the shards independently, in lockstep
macro-periods.

At every sync point the driver gathers one aggregate column from each
shard — its deliverable effective capacity — and redistributes the
global demand proportionally for the next period, exactly what a
global load balancer in front of N rooms would do.  Between sync
points the shards share nothing, so they can run in worker processes
(persistent :func:`multiprocessing.Pipe` servers, one batch of shards
per worker) with only ``2 × shards`` floats crossing the boundary per
period.

Determinism contract
--------------------
* The worker-side driver is the *same object* (:class:`_ShardGroup`)
  the in-process path uses; the parent computes shares from shard
  aggregates in shard-index order in both modes.  ``workers=1``
  therefore produces a bit-identical :class:`CoSimResult` to
  ``workers=N`` — the CI smoke test asserts it — and is the reference
  for the parallel path, mirroring ``perf.sweep``'s contract.
* The *single-process unsharded* path is untouched: sharding is a new
  driver next to :class:`CoSimulation`, not a change to it, so manager
  decisions and golden tables cannot shift.

Merge semantics (documented approximations)
-------------------------------------------
Energies, alarms and mean active servers sum exactly.  The merged PUE
is the energy-weighted quotient of the summed energies.  The merged
served fraction is recomputed from summed offered/shed work — exact.
The response percentile is taken as the *worst shard's* percentile
(a conservative bound; per-sample merging would need the raw series).
``peak_grid_w`` sums per-shard peaks, an upper bound on the true
coincident peak (shards peak at slightly different instants).
"""

from __future__ import annotations

import dataclasses
import math
import multiprocessing
import typing

from repro.core.sla import SLAReport
from repro.datacenter.cosim import CoSimResult, CoSimulation
from repro.datacenter.spec import DataCenterSpec

__all__ = ["partition_spec", "ShardedCoSimulation"]


def partition_spec(spec: DataCenterSpec,
                   shards: int) -> list[DataCenterSpec]:
    """Split a facility into ``shards`` self-similar sub-specs.

    Zones are dealt out in contiguous blocks (largest-remainder, so
    block sizes differ by at most one); each shard receives exactly
    the racks the builder would have mapped to its zones (rack ``r``
    lands in zone ``r % zones``) and a proportional CRAC count
    (rounded, floored at one).  Per-server parameters, tier, and the
    per-zone conductance carry over unchanged, so each shard is a
    smaller facility with the same physics per zone; UPS and tree
    ratings re-derive from the shard's own rack count.
    """
    if shards < 1:
        raise ValueError(f"need at least one shard, got {shards}")
    if shards > spec.zones:
        raise ValueError(
            f"cannot cut {spec.zones} zones into {shards} shards")
    base, rem = divmod(spec.zones, shards)
    specs = []
    zone_lo = 0
    for i in range(shards):
        n_zones = base + (1 if i < rem else 0)
        zone_hi = zone_lo + n_zones
        n_racks = sum(
            spec.racks // spec.zones
            + (1 if z < spec.racks % spec.zones else 0)
            for z in range(zone_lo, zone_hi))
        n_cracs = max(1, min(n_zones,
                             round(spec.cracs * n_zones / spec.zones)))
        specs.append(dataclasses.replace(
            spec, name=f"{spec.name}-shard{i}", racks=n_racks,
            zones=n_zones, cracs=n_cracs))
        zone_lo = zone_hi
    return specs


def _demand_fn(cfg: dict, capacity: float):
    """Build the global demand callable from a picklable config.

    ``cfg`` mirrors :func:`repro.perf.sweep.run_cosim_point`'s demand
    block — ``{"kind": "constant"|"diurnal", "fraction": f}`` with the
    fraction relative to ``capacity`` — so the same declaration drives
    a sharded run, a sweep point, or a plain co-simulation.
    """
    fraction = float(cfg.get("fraction", 0.5))
    kind = cfg.get("kind", "constant")
    if kind == "constant":
        level = fraction * capacity

        def fn(t: float) -> float:
            return level
    elif kind == "diurnal":
        from repro.workload.diurnal import DiurnalProfile
        profile = DiurnalProfile()
        scale = fraction * capacity

        def fn(t: float) -> float:
            return scale * profile(t)
    else:
        raise ValueError(f"unknown demand kind {kind!r}")
    return fn


class _Shard:
    """One sub-facility co-simulation plus its mutable demand share."""

    def __init__(self, index: int, spec: DataCenterSpec, demand_cfg: dict,
                 total_capacity: float, managed: bool):
        self.index = index
        self.share = 0.0  # parent sends the real share before each period
        global_fn = _demand_fn(demand_cfg, total_capacity)

        def shard_demand(t: float) -> float:
            return global_fn(t) * self.share

        self.sim = CoSimulation(spec, shard_demand, managed=managed)
        self.start = self.sim.env.now

    def eff_cap(self) -> float:
        """Deliverable capacity — the aggregate column shards exchange."""
        return self.sim.dc.cluster.total_effective_capacity()

    def advance(self, until: float) -> None:
        self.sim.env.run(until=until)

    def finish(self) -> tuple[CoSimResult, float, float]:
        """Shard summary plus the offered/shed integrals the merge needs."""
        end = self.sim.env.now
        result = self.sim.summarize(self.start, end)
        offered = self.sim.farm.offered_monitor.integral(self.start, end)
        shed = self.sim.farm.shed_monitor.integral(self.start, end)
        return result, offered, shed


class _ShardGroup:
    """Drives a batch of shards; used verbatim in-process and in workers."""

    def __init__(self, items: list[tuple[int, DataCenterSpec]],
                 demand_cfg: dict, total_capacity: float, managed: bool):
        self.shards = [_Shard(i, s, demand_cfg, total_capacity, managed)
                       for i, s in items]

    def ready(self) -> list[tuple[int, float, float]]:
        return [(s.index, s.start, s.eff_cap()) for s in self.shards]

    def advance(self, until: float,
                shares: dict[int, float]) -> list[tuple[int, float]]:
        out = []
        for s in self.shards:
            s.share = shares[s.index]
            s.advance(until)
            out.append((s.index, s.eff_cap()))
        return out

    def finish(self) -> list[tuple[int, tuple]]:
        return [(s.index, s.finish()) for s in self.shards]


def _shard_worker(conn, items, demand_cfg, total_capacity,
                  managed) -> None:
    """Persistent worker: serve one :class:`_ShardGroup` over a pipe."""
    try:
        group = _ShardGroup(items, demand_cfg, total_capacity, managed)
        conn.send(("ready", group.ready()))
        while True:
            msg = conn.recv()
            if msg[0] == "advance":
                conn.send(("ok", group.advance(msg[1], msg[2])))
            elif msg[0] == "finish":
                conn.send(("result", group.finish()))
                return
            else:  # pragma: no cover - protocol guard
                raise RuntimeError(f"unknown message {msg[0]!r}")
    except BaseException as exc:  # noqa: BLE001 - reported to parent
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except (BrokenPipeError, OSError):  # pragma: no cover
            pass
        raise
    finally:
        conn.close()


class _LocalGroup:
    """In-process stand-in with the worker-pipe call surface."""

    def __init__(self, items, demand_cfg, total_capacity, managed):
        self.group = _ShardGroup(items, demand_cfg, total_capacity,
                                 managed)

    def ready(self):
        return self.group.ready()

    def advance(self, until, shares):
        return self.group.advance(until, shares)

    def finish(self):
        return self.group.finish()

    def close(self):
        pass


class _RemoteGroup:
    """A worker process serving one shard batch over a pipe."""

    def __init__(self, items, demand_cfg, total_capacity, managed):
        ctx = multiprocessing.get_context()
        self.conn, child = ctx.Pipe()
        self.proc = ctx.Process(
            target=_shard_worker,
            args=(child, items, demand_cfg, total_capacity, managed),
            daemon=True)
        self.proc.start()
        child.close()

    def _recv(self, expect: str):
        msg = self.conn.recv()
        if msg[0] == "error":
            raise RuntimeError(f"shard worker failed: {msg[1]}")
        if msg[0] != expect:  # pragma: no cover - protocol guard
            raise RuntimeError(f"expected {expect!r}, got {msg[0]!r}")
        return msg[1]

    def ready(self):
        return self._recv("ready")

    def advance(self, until, shares):
        self.conn.send(("advance", until, shares))
        return self._recv("ok")

    def finish(self):
        self.conn.send(("finish",))
        out = self._recv("result")
        self.proc.join(timeout=30.0)
        return out

    def close(self):
        self.conn.close()
        if self.proc.is_alive():  # pragma: no cover - error cleanup
            self.proc.terminate()
            self.proc.join(timeout=5.0)


class ShardedCoSimulation:
    """Co-simulate one facility as zone shards in macro-period lockstep.

    Parameters
    ----------
    spec:
        The whole facility; :func:`partition_spec` cuts it up.
    demand:
        Declarative global demand (picklable — it must cross the
        process boundary): ``{"kind": "constant"|"diurnal",
        "fraction": f}`` with the fraction relative to the *full*
        facility's capacity.
    shards:
        Number of sub-facilities (≤ ``spec.zones``).
    workers:
        OS processes.  ``<= 1`` runs every shard in-process — the
        bit-identical reference; larger values deal shards round-robin
        over ``min(workers, shards)`` persistent pipe workers.
    sync_period_s:
        Lockstep macro-period between demand redistributions (default
        300 s, the macro-management cadence).
    """

    def __init__(self, spec: DataCenterSpec, demand: dict,
                 shards: int = 2, workers: int = 1,
                 managed: bool = True,
                 sync_period_s: float = 300.0):
        if sync_period_s <= 0:
            raise ValueError("sync period must be positive")
        if not isinstance(demand, dict):
            raise TypeError("demand must be a declarative dict "
                            "(it crosses the process boundary)")
        _demand_fn(demand, 1.0)  # validate the config eagerly
        self.spec = spec
        self.demand = dict(demand)
        self.shard_specs = partition_spec(spec, shards)
        self.workers = max(1, min(int(workers), len(self.shard_specs)))
        self.managed = bool(managed)
        self.sync_period_s = float(sync_period_s)
        self.total_capacity = spec.total_servers * spec.server_capacity
        #: Static fallback shares (proportional to installed capacity),
        #: used whenever the fleet reports zero deliverable capacity.
        caps = [s.total_servers * spec.server_capacity
                for s in self.shard_specs]
        total = 0.0
        for cap in caps:
            total += cap
        self._static_shares = {i: cap / total
                               for i, cap in enumerate(caps)}
        self._ran = False

    def _shares(self, eff_caps: dict[int, float]) -> dict[int, float]:
        """Demand shares from the exchanged capacity column.

        Summed in shard-index order so the in-process and worker paths
        fold identically.
        """
        total = 0.0
        for i in sorted(eff_caps):
            total += eff_caps[i]
        if total <= 0.0:
            return dict(self._static_shares)
        return {i: eff_caps[i] / total for i in sorted(eff_caps)}

    def run(self, duration_s: float) -> CoSimResult:
        """Advance every shard through ``duration_s`` and merge."""
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        if self._ran:
            raise RuntimeError("a sharded co-simulation runs once")
        self._ran = True
        items = list(enumerate(self.shard_specs))
        if self.workers <= 1:
            groups = [_LocalGroup(items, self.demand,
                                  self.total_capacity, self.managed)]
        else:
            groups = [_RemoteGroup(items[w::self.workers], self.demand,
                                   self.total_capacity, self.managed)
                      for w in range(self.workers)]
        try:
            eff_caps: dict[int, float] = {}
            starts: set[float] = set()
            for group in groups:
                for index, start, cap in group.ready():
                    starts.add(start)
                    eff_caps[index] = cap
            if len(starts) != 1:  # pragma: no cover - spec invariant
                raise RuntimeError(f"shards disagree on start: {starts}")
            t = start = starts.pop()
            end = start + duration_s
            while t < end:
                t = min(t + self.sync_period_s, end)
                shares = self._shares(eff_caps)
                for index, cap in [pair for group in groups
                                   for pair in group.advance(t, shares)]:
                    eff_caps[index] = cap
            finished: dict[int, tuple] = {}
            for group in groups:
                finished.update(group.finish())
            return self._merge([finished[i] for i in sorted(finished)],
                               duration_s)
        finally:
            for group in groups:
                group.close()

    def _merge(self, finished: list[tuple], duration_s: float
               ) -> CoSimResult:
        """Fold per-shard summaries into one facility-level result."""
        results = [f[0] for f in finished]
        offered = 0.0
        shed = 0.0
        it = 0.0
        facility = 0.0
        active = 0.0
        alarms = 0
        peak = 0.0
        worst_response = float("nan")
        for result, shard_offered, shard_shed in finished:
            offered += shard_offered
            shed += shard_shed
            it += result.it_energy_j
            facility += result.facility_energy_j
            active += result.mean_active_servers
            alarms += result.thermal_alarms
            peak += result.peak_grid_w
            response = result.sla.measured_response_s
            if not math.isnan(response) and not (
                    worst_response >= response):
                worst_response = response
        sla = SLAReport(
            sla=results[0].sla.sla,
            measured_response_s=worst_response,
            served_fraction=(1.0 - shed / offered if offered > 0.0
                             else 1.0),
        )
        return CoSimResult(
            duration_s=duration_s,
            it_energy_j=it,
            facility_energy_j=facility,
            energy_weighted_pue=(facility / it if it > 0.0
                                 else float("inf")),
            mean_active_servers=active,
            sla=sla,
            thermal_alarms=alarms,
            peak_grid_w=peak,
        )
