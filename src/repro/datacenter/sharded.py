"""Zone-sharded parallel plants: one facility split across cores.

A 10⁵-server day is embarrassingly parallel *between* thermal zones:
racks heat only their own zone, zones couple only to their CRACs, and
the farm's dispatch treats capacity as a fungible pool.  This module
exploits that structure by partitioning one :class:`DataCenterSpec`
into ``shards`` self-similar sub-facilities (each takes a contiguous
block of zones plus every rack and a proportional slice of CRACs and
UPS capacity) and co-simulating the shards independently, in lockstep
macro-periods.

At every sync point the driver gathers one aggregate column from each
shard — its deliverable (healthy) capacity — and redistributes the
global demand proportionally for the next period, exactly what a
global load balancer in front of N rooms would do.  Between sync
points the shards share nothing, so they can run in worker processes
(persistent :func:`multiprocessing.Pipe` servers, one batch of shards
per worker) with only ``2 × shards`` floats crossing the boundary per
period.

Transport: zero-copy shard fabric
---------------------------------
With workers, the per-period payloads (demand-share vector down,
capacity column up) travel through one shared-memory
:class:`~repro.datacenter.shm.FabricBlock` per worker under the
seqlock/epoch protocol — the pipe then carries only control tokens,
so the hot path serializes nothing.  When shared memory is
unavailable (or ``REPRO_NO_SHM=1``), the payloads ride the pipe
exactly as before; :attr:`ShardedCoSimulation.transport` records
which path ran (``"local"`` / ``"shm"`` / ``"pipe"``), and both
transports are bit-identical to ``workers=1`` (float64 columns
round-trip exactly either way).  Control, error reporting, build
configs and the final result pickle always stay on the pipe — they
are the crash-attribution and replay surface.

Warm worker reuse
-----------------
Spawning a worker pays interpreter fork + first-build cost; bench
``--repeat`` loops rebuild everything per iteration by design (runs
are one-shot for determinism) but can share a
:class:`ShardWorkerPool`, which keeps persistent worker processes
alive between runs and re-``build``\\ s each run's shard batches on
the warm processes.

Determinism contract
--------------------
* The worker-side driver is the *same object* (:class:`_ShardGroup`)
  the in-process path uses; the parent computes shares from shard
  aggregates in shard-index order in both modes.  ``workers=1``
  therefore produces a bit-identical :class:`CoSimResult` to
  ``workers=N`` — the CI smoke test asserts it — and is the reference
  for the parallel path, mirroring ``perf.sweep``'s contract.
* The *single-process unsharded* path is untouched: sharding is a new
  driver next to :class:`CoSimulation`, not a change to it, so manager
  decisions and golden tables cannot shift.

Worker liveness
---------------
The parent never blocks forever on a pipe: every reply crosses
:func:`poll_recv`, which polls with a deadline and watches the worker
process, raising :class:`ShardWorkerDied` (process gone) or
:class:`ShardWorkerTimeout` (hung past ``recv_deadline_s``) with the
shard ids and the last completed macro period.  The federation
supervisor (:mod:`repro.federation`) reuses the same helper — and
layers restart-and-replay on top of it.

Fault domains inside shards
---------------------------
A facility-level :class:`~repro.core.faults.FaultSchedule` can ride
into the shards: :func:`partition_faults` retargets each incident at
the shard that owns its fault domain (rack branches follow the rack,
CRAC failures follow the proportional CRAC slice, UPS derates and
utility outages replicate into every shard, whose UPS banks jointly
*are* the facility's).  Shard :class:`ResilienceReport`\\ s merge with
:func:`merge_resilience`.  The exchanged capacity column is the
*healthy* capacity (installed minus failed servers) rather than the
awake capacity, so a repaired shard's share snaps back at the next
sync point instead of starving behind its own sleep state.

Merge semantics (documented approximations)
-------------------------------------------
Energies, alarms and mean active servers sum exactly.  The merged PUE
is the energy-weighted quotient of the summed energies.  The merged
served fraction is recomputed from summed offered/shed work — exact.
The response percentile is taken as the *worst shard's* percentile
(a conservative bound; per-sample merging would need the raw series).
``peak_grid_w`` sums per-shard peaks, an upper bound on the true
coincident peak (shards peak at slightly different instants).
Resilience reports concatenate incidents and sum counters; the
during-incident SLA is the worst shard's (same convention).
"""

from __future__ import annotations

import dataclasses
import math
import multiprocessing
import time
import typing

import numpy as np

from repro.cluster.server import ServerState
from repro.core.faults import FaultKind, FaultSchedule, ResilienceReport
from repro.core.sla import SLAReport
from repro.datacenter.cosim import CoSimResult, CoSimulation
from repro.datacenter.shm import FabricBlock, shm_available
from repro.datacenter.spec import DataCenterSpec

__all__ = [
    "partition_spec",
    "partition_faults",
    "merge_resilience",
    "merge_results",
    "poll_recv",
    "ShardWorkerDied",
    "ShardWorkerTimeout",
    "ShardedCoSimulation",
    "ShardWorkerPool",
]


class ShardWorkerDied(RuntimeError):
    """A pipe worker process exited (or broke its pipe) mid-protocol.

    The message names the shard ids served by the worker and the last
    macro period it completed, so a crash in a 96-shard campaign is
    attributable without archaeology.
    """


class ShardWorkerTimeout(ShardWorkerDied):
    """A pipe worker failed to reply within the receive deadline.

    Subclass of :class:`ShardWorkerDied`: callers that only care about
    "the worker is gone" catch the base class; callers that restart
    differently on hang vs. crash can distinguish.
    """


def poll_recv(conn, deadline_s: float, proc=None, context: str = ""):
    """``conn.recv()`` with a liveness poll instead of a blocking wait.

    Polls ``conn`` in short slices up to ``deadline_s`` wall seconds.
    Raises :class:`ShardWorkerDied` as soon as the worker process is
    observed dead with nothing left in the pipe (or the pipe returns
    EOF), and :class:`ShardWorkerTimeout` when the deadline passes
    with the worker still alive — a hung worker, not a dead one.
    ``context`` is appended to the error message (shard ids, last
    completed period).
    """
    if deadline_s <= 0:
        raise ValueError("receive deadline must be positive")
    deadline = time.monotonic() + deadline_s
    while True:
        remaining = deadline - time.monotonic()
        if conn.poll(min(0.05, max(0.0, remaining))):
            try:
                return conn.recv()
            except (EOFError, OSError) as exc:
                raise ShardWorkerDied(
                    f"worker pipe closed mid-protocol{context}: "
                    f"{type(exc).__name__}") from exc
        if proc is not None and not proc.is_alive() and not conn.poll(0):
            raise ShardWorkerDied(
                f"worker process exited (code {proc.exitcode})"
                f"{context}")
        if remaining <= 0:
            raise ShardWorkerTimeout(
                f"no reply within {deadline_s:.0f}s deadline"
                f"{context}")


def partition_spec(spec: DataCenterSpec,
                   shards: int) -> list[DataCenterSpec]:
    """Split a facility into ``shards`` self-similar sub-specs.

    Zones are dealt out in contiguous blocks (largest-remainder, so
    block sizes differ by at most one); each shard receives exactly
    the racks the builder would have mapped to its zones (rack ``r``
    lands in zone ``r % zones``) and a proportional CRAC count
    (rounded, floored at one).  Per-server parameters, tier, and the
    per-zone conductance carry over unchanged, so each shard is a
    smaller facility with the same physics per zone; UPS and tree
    ratings re-derive from the shard's own rack count.
    """
    if shards < 1:
        raise ValueError(f"need at least one shard, got {shards}")
    if shards > spec.zones:
        raise ValueError(
            f"cannot cut {spec.zones} zones into {shards} shards")
    base, rem = divmod(spec.zones, shards)
    specs = []
    zone_lo = 0
    for i in range(shards):
        n_zones = base + (1 if i < rem else 0)
        zone_hi = zone_lo + n_zones
        n_racks = sum(
            spec.racks // spec.zones
            + (1 if z < spec.racks % spec.zones else 0)
            for z in range(zone_lo, zone_hi))
        n_cracs = max(1, min(n_zones,
                             round(spec.cracs * n_zones / spec.zones)))
        specs.append(dataclasses.replace(
            spec, name=f"{spec.name}-shard{i}", racks=n_racks,
            zones=n_zones, cracs=n_cracs))
        zone_lo = zone_hi
    return specs


def _zone_blocks(spec: DataCenterSpec,
                 shard_specs: list[DataCenterSpec]) -> list[range]:
    """The contiguous global-zone block each shard covers."""
    blocks = []
    lo = 0
    for part in shard_specs:
        blocks.append(range(lo, lo + part.zones))
        lo += part.zones
    return blocks


def _rack_map(spec: DataCenterSpec,
              shard_specs: list[DataCenterSpec]
              ) -> dict[str, tuple[int, str]]:
    """``{facility rack name: (shard index, shard-local rack name)}``.

    The shard builder assigns its local rack ``r'`` to local zone
    ``r' % zones``; enumerating the global racks of a shard's zone
    block in the same cycling order reproduces that assignment, so a
    fault aimed at facility rack ``dc-rack7`` lands on the shard rack
    holding the same servers in the same (relabelled) zone.
    """
    mapping: dict[str, tuple[int, str]] = {}
    for i, (part, block) in enumerate(
            zip(shard_specs, _zone_blocks(spec, shard_specs))):
        local = 0
        for k in range((spec.racks // spec.zones) + 1):
            for z in block:
                r = z + k * spec.zones
                if r < spec.racks and local < part.racks:
                    mapping[f"{spec.name}-rack{r}"] = (
                        i, f"{part.name}-rack{local}")
                    local += 1
    return mapping


def partition_faults(spec: DataCenterSpec,
                     shard_specs: list[DataCenterSpec],
                     schedule: FaultSchedule) -> list[FaultSchedule]:
    """Split a facility fault schedule into per-shard schedules.

    * ``RACK_BRANCH`` incidents follow their rack into the shard that
      owns it (retargeted to the shard-local rack name).
    * ``CRAC_FAILURE`` incidents follow the proportional CRAC slice:
      global unit ``c`` belongs to the shard whose cumulative CRAC
      count covers it, clamped into the shard's own range (rounding
      can shrink a slice).
    * ``UPS_DERATE`` and ``UTILITY_OUTAGE`` are facility-wide:
      replicated into every shard, whose UPS banks jointly are the
      facility's parallel bank.
    """
    racks = _rack_map(spec, shard_specs)
    crac_lo = []
    lo = 0
    for part in shard_specs:
        crac_lo.append(lo)
        lo += part.cracs
    total_cracs = lo
    schedules = [FaultSchedule() for _ in shard_specs]
    for incident in schedule.ordered():
        if incident.kind is FaultKind.RACK_BRANCH:
            if incident.target not in racks:
                raise KeyError(f"no rack named {incident.target!r} "
                               f"in {spec.name!r}")
            shard, local = racks[incident.target]
            schedules[shard].add(
                dataclasses.replace(incident, target=local))
        elif incident.kind is FaultKind.CRAC_FAILURE:
            # Map the facility CRAC index onto the concatenated shard
            # slices (scaled when rounding changed the total).
            c = int(incident.target)
            if not 0 <= c < spec.cracs:
                raise IndexError(f"CRAC {c} outside facility range")
            scaled = min(total_cracs - 1, c * total_cracs // spec.cracs)
            shard = 0
            for i, lo in enumerate(crac_lo):
                if scaled >= lo:
                    shard = i
            local = min(scaled - crac_lo[shard],
                        shard_specs[shard].cracs - 1)
            schedules[shard].add(
                dataclasses.replace(incident, target=local))
        else:  # facility-wide: UPS derate, utility outage
            for shard_schedule in schedules:
                shard_schedule.add(incident)
    return schedules


def merge_resilience(reports: typing.Sequence[ResilienceReport | None]
                     ) -> ResilienceReport | None:
    """Fold per-shard resilience reports into one facility report.

    Incidents concatenate (sorted by start time, then kind/target for
    a deterministic order); counters sum; MTTR is recomputed over the
    merged closed incidents.  The during-incident SLA is the worst
    shard's report (lowest served fraction) — the same conservative
    worst-shard convention the response percentile uses.
    """
    present = [r for r in reports if r is not None]
    if not present:
        return None
    incidents = tuple(sorted(
        (rec for r in present for rec in r.incidents),
        key=lambda rec: (rec.start_s, rec.kind.value, str(rec.target))))
    closed = [rec.duration_s for rec in incidents
              if not rec.active and not math.isnan(rec.duration_s)]
    worst_sla: SLAReport | None = None
    for r in present:
        sla = r.sla_during_incidents
        if sla is None:
            continue
        if worst_sla is None or (
                sla.served_fraction < worst_sla.served_fraction):
            worst_sla = sla
    return ResilienceReport(
        incident_count=sum(r.incident_count for r in present),
        incidents=incidents,
        mttr_s=sum(closed) / len(closed) if closed else 0.0,
        degraded_mode_s=sum(r.degraded_mode_s for r in present),
        mode_transitions=sum(r.mode_transitions for r in present),
        protective_shutdowns=sum(r.protective_shutdowns
                                 for r in present),
        blackouts=sum(r.blackouts for r in present),
        sla_during_incidents=worst_sla,
        incident_energy_j=sum(r.incident_energy_j for r in present),
    )


def merge_results(finished: typing.Sequence[tuple[CoSimResult, float,
                                                  float]],
                  duration_s: float) -> CoSimResult:
    """Fold ``(result, offered, shed)`` triples into one summary.

    The merge semantics documented in the module docstring; shared by
    :class:`ShardedCoSimulation` and the federation layer (a site's
    zone shards merge into one site result the same way a facility's
    shards merge into one facility result).
    """
    results = [f[0] for f in finished]
    offered = 0.0
    shed = 0.0
    it = 0.0
    facility = 0.0
    active = 0.0
    alarms = 0
    peak = 0.0
    worst_response = float("nan")
    for result, shard_offered, shard_shed in finished:
        offered += shard_offered
        shed += shard_shed
        it += result.it_energy_j
        facility += result.facility_energy_j
        active += result.mean_active_servers
        alarms += result.thermal_alarms
        peak += result.peak_grid_w
        response = result.sla.measured_response_s
        if not math.isnan(response) and not (
                worst_response >= response):
            worst_response = response
    sla = SLAReport(
        sla=results[0].sla.sla,
        measured_response_s=worst_response,
        served_fraction=(1.0 - shed / offered if offered > 0.0
                         else 1.0),
    )
    return CoSimResult(
        duration_s=duration_s,
        it_energy_j=it,
        facility_energy_j=facility,
        energy_weighted_pue=(facility / it if it > 0.0
                             else float("inf")),
        mean_active_servers=active,
        sla=sla,
        thermal_alarms=alarms,
        peak_grid_w=peak,
        resilience=merge_resilience([r.resilience for r in results]),
    )


def _demand_fn(cfg: dict, capacity: float):
    """Build the global demand callable from a picklable config.

    ``cfg`` mirrors :func:`repro.perf.sweep.run_cosim_point`'s demand
    block — ``{"kind": "constant"|"diurnal", "fraction": f}`` with the
    fraction relative to ``capacity`` — so the same declaration drives
    a sharded run, a sweep point, or a plain co-simulation.
    """
    fraction = float(cfg.get("fraction", 0.5))
    kind = cfg.get("kind", "constant")
    if kind == "constant":
        level = fraction * capacity

        def fn(t: float) -> float:
            return level
    elif kind == "diurnal":
        from repro.workload.diurnal import DiurnalProfile
        profile = DiurnalProfile()
        scale = fraction * capacity

        def fn(t: float) -> float:
            return scale * profile(t)
    else:
        raise ValueError(f"unknown demand kind {kind!r}")
    return fn


class _Shard:
    """One sub-facility co-simulation plus its mutable demand share."""

    def __init__(self, index: int, spec: DataCenterSpec, demand_cfg: dict,
                 total_capacity: float, managed: bool,
                 fault_schedule: FaultSchedule | None = None):
        self.index = index
        self.share = 0.0  # parent sends the real share before each period
        global_fn = _demand_fn(demand_cfg, total_capacity)

        def shard_demand(t: float) -> float:
            return global_fn(t) * self.share

        self.sim = CoSimulation(spec, shard_demand, managed=managed,
                                fault_schedule=fault_schedule)
        self.start = self.sim.env.now

    def deliverable_cap(self) -> float:
        """Healthy capacity — the aggregate column shards exchange.

        Installed capacity minus failed servers: what the shard could
        serve once its manager wakes the fleet, not what happens to be
        awake right now.  Re-read at every sync point, so a repair
        restores the shard's demand share at the next period instead
        of trapping it behind its own post-fault sleep state (low
        share → few awake → low awake capacity → low share).
        """
        dc = self.sim.dc
        failed = dc.cluster.count_in(ServerState.FAILED)
        return (dc.spec.total_servers - failed) * dc.spec.server_capacity

    def advance(self, until: float) -> None:
        self.sim.env.run(until=until)

    def finish(self) -> tuple[CoSimResult, float, float]:
        """Shard summary plus the offered/shed integrals the merge needs."""
        end = self.sim.env.now
        result = self.sim.summarize(self.start, end)
        offered = self.sim.farm.offered_monitor.integral(self.start, end)
        shed = self.sim.farm.shed_monitor.integral(self.start, end)
        return result, offered, shed


class _ShardGroup:
    """Drives a batch of shards; used verbatim in-process and in workers."""

    def __init__(self, items: list[tuple], demand_cfg: dict,
                 total_capacity: float, managed: bool):
        self.shards = [_Shard(i, s, demand_cfg, total_capacity, managed,
                              fault_schedule=sched)
                       for i, s, sched in items]

    def ready(self) -> list[tuple[int, float, float]]:
        return [(s.index, s.start, s.deliverable_cap())
                for s in self.shards]

    def advance(self, until: float,
                shares: dict[int, float]) -> list[tuple[int, float]]:
        out = []
        for s in self.shards:
            s.share = shares[s.index]
            s.advance(until)
            out.append((s.index, s.deliverable_cap()))
        return out

    def finish(self) -> list[tuple[int, tuple]]:
        return [(s.index, s.finish()) for s in self.shards]


def _group_layout(n_shards: int,
                  n_local: int) -> tuple[tuple[str, int], ...]:
    """Fabric lanes for one worker group.

    ``shares``: the parent's full demand-share vector (indexed by
    global shard id — every group reads the same column it would have
    received as a dict).  ``caps``: the group's deliverable-capacity
    column, one slot per local shard in ``shard_ids`` order.
    """
    return (("shares", n_shards), ("caps", max(1, n_local)))


def _shard_worker(conn, persist: bool = False) -> None:
    """Persistent worker: serve shard batches over a pipe (+ fabric).

    Each run starts with ``("build", items, demand_cfg,
    total_capacity, managed, shm)`` and ends with ``("finish",)`` →
    ``("result", ...)``; with ``persist`` the worker then waits for
    the next ``build`` (warm reuse across bench repeats) until an
    ``("exit",)``, otherwise it returns.  ``shm`` is ``(block name,
    total shard count)`` or ``None``: with a fabric, the per-period
    demand shares and capacity columns travel through the block's
    seqlock lanes and the pipe carries only control tokens; without
    one, the payloads ride the pipe as before.
    """
    block = None
    try:
        while True:
            msg = conn.recv()
            if msg[0] == "exit":
                return
            if msg[0] != "build":  # pragma: no cover - protocol guard
                raise RuntimeError(f"unknown message {msg[0]!r}")
            _, items, demand_cfg, total_capacity, managed, shm = msg
            group = _ShardGroup(items, demand_cfg, total_capacity,
                                managed)
            local_ids = [i for i, _, _ in items]
            shares_lane = caps_lane = None
            if shm is not None:
                name, n_shards = shm
                block = FabricBlock.attach(
                    name, _group_layout(n_shards, len(local_ids)))
                shares_lane = block.lane("shares")
                caps_lane = block.lane("caps")
            conn.send(("ready", group.ready()))
            period = 0
            while True:
                msg = conn.recv()
                if msg[0] == "advance":
                    period += 1
                    if msg[2] is not None:
                        shares = msg[2]
                    else:
                        vec = shares_lane.read(period)
                        shares = {i: float(vec[i]) for i in local_ids}
                    out = group.advance(msg[1], shares)
                    if caps_lane is not None:
                        caps_lane.write(period,
                                        [cap for _, cap in out])
                        conn.send(("ok", None))
                    else:
                        conn.send(("ok", out))
                elif msg[0] == "finish":
                    conn.send(("result", group.finish()))
                    break
                else:  # pragma: no cover - protocol guard
                    raise RuntimeError(f"unknown message {msg[0]!r}")
            del group
            if block is not None:
                block.close()
                block = None
            if not persist:
                return
    except BaseException as exc:  # noqa: BLE001 - reported to parent
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except (BrokenPipeError, OSError):  # pragma: no cover
            pass
        raise
    finally:
        if block is not None:
            block.close()
        conn.close()


class _LocalGroup:
    """In-process stand-in with the worker-pipe call surface."""

    def __init__(self, items, demand_cfg, total_capacity, managed,
                 recv_deadline_s=None):
        self.group = _ShardGroup(items, demand_cfg, total_capacity,
                                 managed)

    def ready(self):
        return self.group.ready()

    def advance(self, until, shares):
        return self.group.advance(until, shares)

    def finish(self):
        return self.group.finish()

    def close(self):
        pass


class _ShardWorkerHandle:
    """A worker process serving one shard batch over a pipe.

    Every reply crosses :func:`poll_recv` with ``recv_deadline_s``, so
    a SIGKILLed or hung worker surfaces as :class:`ShardWorkerDied` /
    :class:`ShardWorkerTimeout` naming the shards it served and the
    last macro period it completed — never as a parent blocked forever
    in ``Connection.recv``.

    With a ``fabric`` (a :class:`~repro.datacenter.shm.FabricBlock`
    the caller created and owns), the per-period share vector and
    capacity column travel through its lanes at the macro-period
    epoch; the pipe then carries only control tokens.  With
    ``persist``, the worker process outlives :meth:`finish` so a
    :class:`ShardWorkerPool` can rebuild the next run on it warm.
    """

    def __init__(self, items, demand_cfg, total_capacity, managed,
                 recv_deadline_s: float = 120.0, fabric=None,
                 persist: bool = False):
        ctx = multiprocessing.get_context()
        self.conn, child = ctx.Pipe()
        self.recv_deadline_s = float(recv_deadline_s)
        self.persist = bool(persist)
        self.shard_ids: list[int] = []
        self.completed_periods = 0
        self._done = True
        self.proc = ctx.Process(target=_shard_worker,
                                args=(child, self.persist), daemon=True)
        self.proc.start()
        child.close()
        self.build(items, demand_cfg, total_capacity, managed, fabric)

    def build(self, items, demand_cfg, total_capacity, managed,
              fabric=None) -> None:
        """Start one run (on a fresh spawn or a warm pooled worker)."""
        self.shard_ids = [i for i, _, _ in items]
        self.completed_periods = 0
        self._done = False
        self._fabric = fabric
        if fabric is not None:
            self._shares_lane = fabric.lane("shares")
            self._caps_lane = fabric.lane("caps")
            self._share_vec = np.zeros(self._shares_lane.size)
            shm = (fabric.name, self._shares_lane.size)
        else:
            self._shares_lane = self._caps_lane = None
            shm = None
        self._send(("build", items, demand_cfg, total_capacity,
                    managed, shm))

    def _context(self) -> str:
        return (f" (shards {self.shard_ids}, last completed period "
                f"{self.completed_periods})")

    def _send(self, message: tuple) -> None:
        try:
            self.conn.send(message)
        except (BrokenPipeError, OSError) as exc:
            raise ShardWorkerDied(
                f"worker pipe broken on send{self._context()}: "
                f"{type(exc).__name__}") from exc

    def _recv(self, expect: str):
        msg = poll_recv(self.conn, self.recv_deadline_s, proc=self.proc,
                        context=self._context())
        if msg[0] == "error":
            raise RuntimeError(f"shard worker failed: {msg[1]}")
        if msg[0] != expect:  # pragma: no cover - protocol guard
            raise RuntimeError(f"expected {expect!r}, got {msg[0]!r}")
        return msg[1]

    def ready(self):
        return self._recv("ready")

    def advance(self, until, shares):
        period = self.completed_periods + 1
        if self._fabric is not None:
            for i, share in shares.items():
                self._share_vec[i] = share
            self._shares_lane.write(period, self._share_vec)
            self._send(("advance", until, None))
            self._recv("ok")
            caps = self._caps_lane.read(period,
                                        deadline_s=self.recv_deadline_s)
            out = [(i, float(caps[k]))
                   for k, i in enumerate(self.shard_ids)]
        else:
            self._send(("advance", until, shares))
            out = self._recv("ok")
        self.completed_periods += 1
        return out

    def finish(self):
        self._send(("finish",))
        out = self._recv("result")
        self._done = True
        if not self.persist:
            self.proc.join(timeout=30.0)
        return out

    def close(self):
        """Release the run; pooled workers survive a *clean* finish.

        A persistent worker that completed its run stays alive for the
        pool to rebuild (the pool's own :meth:`ShardWorkerPool.close`
        retires it); one closed mid-run is in an unknown state and is
        terminated like a non-pooled worker.
        """
        if self.persist and self._done and self.proc.is_alive():
            return
        self.conn.close()
        if self.proc.is_alive():  # pragma: no cover - error cleanup
            self.proc.terminate()
            self.proc.join(timeout=5.0)


class ShardWorkerPool:
    """Persistent shard workers reused across sharded runs.

    ``ShardedCoSimulation`` is one-shot by design; benchmark
    ``--repeat`` loops therefore pay worker spawn + build every
    iteration.  A pool keeps up to ``workers`` persistent pipe
    servers alive between runs: pass the same pool to successive
    ``ShardedCoSimulation(..., pool=...)`` constructions and each run
    re-``build``\\ s its shard batches on the warm processes.  Close
    the pool (or use it as a context manager) to retire the workers.

    Reuse cannot perturb results: the worker rebuilds its whole
    :class:`_ShardGroup` from the build message, so a warm process
    differs from a fresh one only by interpreter startup cost.
    """

    def __init__(self, workers: int, recv_deadline_s: float = 120.0):
        if workers < 1:
            raise ValueError("pool needs at least one worker")
        self.workers = int(workers)
        self.recv_deadline_s = float(recv_deadline_s)
        self._handles: list[_ShardWorkerHandle] = []

    def lease(self, batches, demand_cfg, total_capacity, managed,
              fabrics) -> list[_ShardWorkerHandle]:
        """Handles for one run, reusing live workers where possible."""
        if len(batches) > self.workers:
            raise ValueError(
                f"run wants {len(batches)} workers, pool holds "
                f"{self.workers}")
        out = []
        for w, (items, fabric) in enumerate(zip(batches, fabrics)):
            if (w < len(self._handles)
                    and self._handles[w]._done
                    and self._handles[w].proc.is_alive()):
                handle = self._handles[w]
                handle.build(items, demand_cfg, total_capacity,
                             managed, fabric)
            else:
                handle = _ShardWorkerHandle(
                    items, demand_cfg, total_capacity, managed,
                    recv_deadline_s=self.recv_deadline_s,
                    fabric=fabric, persist=True)
                if w < len(self._handles):
                    self._handles[w] = handle
                else:
                    self._handles.append(handle)
            out.append(handle)
        return out

    def close(self) -> None:
        """Retire every pooled worker (idempotent)."""
        for handle in self._handles:
            if handle.proc.is_alive() and handle._done:
                try:
                    handle._send(("exit",))
                    handle.proc.join(timeout=5.0)
                except ShardWorkerDied:  # pragma: no cover
                    pass
            handle.persist = False
            handle.close()
        self._handles = []

    def __enter__(self) -> "ShardWorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ShardedCoSimulation:
    """Co-simulate one facility as zone shards in macro-period lockstep.

    Parameters
    ----------
    spec:
        The whole facility; :func:`partition_spec` cuts it up.
    demand:
        Declarative global demand (picklable — it must cross the
        process boundary): ``{"kind": "constant"|"diurnal",
        "fraction": f}`` with the fraction relative to the *full*
        facility's capacity.
    shards:
        Number of sub-facilities (≤ ``spec.zones``).
    workers:
        OS processes.  ``<= 1`` runs every shard in-process — the
        bit-identical reference; larger values deal shards round-robin
        over ``min(workers, shards)`` persistent pipe workers.
    sync_period_s:
        Lockstep macro-period between demand redistributions (default
        300 s, the macro-management cadence).
    fault_schedule:
        Optional facility-level fault schedule, partitioned into the
        shards by :func:`partition_faults`; the merged result carries
        the merged :class:`~repro.core.faults.ResilienceReport`.
    recv_deadline_s:
        Wall-clock deadline for any single worker reply (a macro
        period of the largest shard takes well under a second; the
        default 120 s only trips on a genuinely dead or hung worker).
    pool:
        Optional :class:`ShardWorkerPool` to lease worker processes
        from instead of spawning fresh ones (warm reuse across bench
        repeats).  The pool outlives the run; the caller closes it.
    tracer:
        Optional :class:`~repro.obs.tracer.Tracer`; the chosen
        transport is recorded as a ``sharded.transport.<name>``
        counter.

    After :meth:`run`, :attr:`transport` names the exchange path that
    ran: ``"local"`` (in-process), ``"shm"`` (shared-memory fabric),
    or ``"pipe"`` (payloads pickled over the pipe — the fallback when
    shared memory is unavailable or ``REPRO_NO_SHM=1``).
    """

    def __init__(self, spec: DataCenterSpec, demand: dict,
                 shards: int = 2, workers: int = 1,
                 managed: bool = True,
                 sync_period_s: float = 300.0,
                 fault_schedule: FaultSchedule | None = None,
                 recv_deadline_s: float = 120.0,
                 pool: "ShardWorkerPool | None" = None,
                 tracer=None):
        if sync_period_s <= 0:
            raise ValueError("sync period must be positive")
        if recv_deadline_s <= 0:
            raise ValueError("receive deadline must be positive")
        if not isinstance(demand, dict):
            raise TypeError("demand must be a declarative dict "
                            "(it crosses the process boundary)")
        _demand_fn(demand, 1.0)  # validate the config eagerly
        self.spec = spec
        self.demand = dict(demand)
        self.shard_specs = partition_spec(spec, shards)
        self.shard_faults: list[FaultSchedule | None]
        if fault_schedule is None:
            self.shard_faults = [None] * len(self.shard_specs)
        else:
            self.shard_faults = list(partition_faults(
                spec, self.shard_specs, fault_schedule))
        self.workers = max(1, min(int(workers), len(self.shard_specs)))
        self.managed = bool(managed)
        self.sync_period_s = float(sync_period_s)
        self.recv_deadline_s = float(recv_deadline_s)
        self.total_capacity = spec.total_servers * spec.server_capacity
        #: Static fallback shares (proportional to installed capacity),
        #: used whenever the fleet reports zero deliverable capacity.
        caps = [s.total_servers * spec.server_capacity
                for s in self.shard_specs]
        total = 0.0
        for cap in caps:
            total += cap
        self._static_shares = {i: cap / total
                               for i, cap in enumerate(caps)}
        self.pool = pool
        self.tracer = tracer
        #: Exchange path of the (last) run: local / shm / pipe.
        self.transport: str | None = None
        self._ran = False

    def _shares(self, caps: dict[int, float]) -> dict[int, float]:
        """Demand shares from the exchanged capacity column.

        Summed in shard-index order so the in-process and worker paths
        fold identically.
        """
        total = 0.0
        for i in sorted(caps):
            total += caps[i]
        if total <= 0.0:
            return dict(self._static_shares)
        return {i: caps[i] / total for i in sorted(caps)}

    def run(self, duration_s: float) -> CoSimResult:
        """Advance every shard through ``duration_s`` and merge."""
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        if self._ran:
            raise RuntimeError("a sharded co-simulation runs once")
        self._ran = True
        items = [(i, spec, sched) for i, (spec, sched) in enumerate(
            zip(self.shard_specs, self.shard_faults))]
        fabrics: list[FabricBlock | None] = []
        if self.workers <= 1:
            self.transport = "local"
            groups = [_LocalGroup(items, self.demand,
                                  self.total_capacity, self.managed)]
        else:
            batches = [items[w::self.workers]
                       for w in range(self.workers)]
            self.transport = "pipe"
            if shm_available():
                try:
                    fabrics = [FabricBlock.create(
                        _group_layout(len(items), len(batch)))
                        for batch in batches]
                    self.transport = "shm"
                except OSError:  # pragma: no cover - /dev/shm exhausted
                    for fabric in fabrics:
                        fabric.close()
                    fabrics = []
            if not fabrics:
                fabrics = [None] * len(batches)
            if self.pool is not None:
                groups = self.pool.lease(batches, self.demand,
                                         self.total_capacity,
                                         self.managed, fabrics)
            else:
                groups = [_ShardWorkerHandle(
                    batch, self.demand, self.total_capacity,
                    self.managed, recv_deadline_s=self.recv_deadline_s,
                    fabric=fabric)
                    for batch, fabric in zip(batches, fabrics)]
        if self.tracer is not None:
            self.tracer.count(f"sharded.transport.{self.transport}")
        try:
            caps: dict[int, float] = {}
            starts: set[float] = set()
            for group in groups:
                for index, start, cap in group.ready():
                    starts.add(start)
                    caps[index] = cap
            if len(starts) != 1:  # pragma: no cover - spec invariant
                raise RuntimeError(f"shards disagree on start: {starts}")
            t = start = starts.pop()
            end = start + duration_s
            while t < end:
                t = min(t + self.sync_period_s, end)
                shares = self._shares(caps)
                for index, cap in [pair for group in groups
                                   for pair in group.advance(t, shares)]:
                    caps[index] = cap
            finished: dict[int, tuple] = {}
            for group in groups:
                finished.update(group.finish())
            return merge_results([finished[i] for i in sorted(finished)],
                                 duration_s)
        finally:
            for group in groups:
                group.close()
            for fabric in fabrics:
                if fabric is not None:
                    fabric.close()
