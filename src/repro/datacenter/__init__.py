"""Data-center assembly: tier classification, declarative specs, and
the end-to-end cyber-physical co-simulation harness."""

from repro.datacenter.availability import (
    AvailabilityEstimate,
    AvailabilityModel,
    AvailabilityParameters,
    TIER_AVAILABILITY_PARAMETERS,
)
from repro.datacenter.cosim import CoSimResult, CoSimulation
from repro.datacenter.sharded import (
    ShardedCoSimulation,
    ShardWorkerDied,
    ShardWorkerPool,
    ShardWorkerTimeout,
    merge_resilience,
    merge_results,
    partition_faults,
    partition_spec,
    poll_recv,
)
from repro.datacenter.shm import (
    FabricBlock,
    ShmLane,
    ShmLaneClosed,
    ShmLaneTimeout,
    shm_available,
)
from repro.datacenter.spec import DataCenter, DataCenterSpec
from repro.datacenter.tiers import Tier, TIER_SPECS, TierSpec

__all__ = [
    "AvailabilityEstimate",
    "AvailabilityModel",
    "AvailabilityParameters",
    "CoSimResult",
    "CoSimulation",
    "DataCenter",
    "DataCenterSpec",
    "FabricBlock",
    "ShardedCoSimulation",
    "ShardWorkerDied",
    "ShardWorkerPool",
    "ShardWorkerTimeout",
    "ShmLane",
    "ShmLaneClosed",
    "ShmLaneTimeout",
    "shm_available",
    "merge_resilience",
    "merge_results",
    "partition_faults",
    "partition_spec",
    "poll_recv",
    "TIER_AVAILABILITY_PARAMETERS",
    "TIER_SPECS",
    "Tier",
    "TierSpec",
]
