"""End-to-end cyber-physical co-simulation (the Figure 4 testbench).

:class:`CoSimulation` closes every loop the paper describes in one
harness: workload drives the farm, the farm's servers heat zones and
load the power tree, CRACs chase the heat on their slow schedule, the
PUE meter watches everything, and — optionally — a
:class:`~repro.core.manager.MacroResourceManager` coordinates.

Running the same workload with the manager on and off is the FIG-4
experiment: macro-coordination versus a statically provisioned,
locally-controlled facility.  Passing a
:class:`~repro.core.faults.FaultSchedule` turns the same pair into the
resilience experiment: the coordinated facility detects capacity loss,
degrades gracefully, and recovers, while the static one rides into
thermal protective shutdowns — and the :class:`CoSimResult` carries a
:class:`~repro.core.faults.ResilienceReport` quantifying both.
"""

from __future__ import annotations

import dataclasses
import math
import typing

from repro.control.farm import ServerFarm
from repro.controlplane import (
    ControlPlane,
    ControlPlaneProfile,
    ControlPlaneReport,
)
from repro.core.faults import (
    FaultDomainEngine,
    FaultSchedule,
    ResilienceReport,
)
from repro.core.manager import MacroResourceManager
from repro.core.sla import SLA, SLAReport
from repro.datacenter.spec import DataCenter, DataCenterSpec
from repro.sim import Environment, RandomStreams

__all__ = ["CoSimulation", "CoSimResult"]


@dataclasses.dataclass
class CoSimResult:
    """Summary of one co-simulation run."""

    duration_s: float
    it_energy_j: float
    facility_energy_j: float
    energy_weighted_pue: float
    mean_active_servers: float
    sla: SLAReport
    thermal_alarms: int
    peak_grid_w: float
    #: Incident summary; ``None`` when no fault schedule was injected.
    resilience: ResilienceReport | None = None
    #: Bus/watchdog accounting; ``None`` without a control plane.
    controlplane: ControlPlaneReport | None = None

    @property
    def facility_kwh(self) -> float:
        return self.facility_energy_j / 3.6e6


def _merge_windows(
        windows: list[tuple[float, float]]) -> list[tuple[float, float]]:
    """Union of possibly-overlapping intervals."""
    merged: list[tuple[float, float]] = []
    for start, end in sorted(windows):
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


class CoSimulation:
    """Wire a DataCenter + workload (+ optional macro manager)."""

    def __init__(self, spec: DataCenterSpec,
                 demand_fn: typing.Callable[[float], float],
                 managed: bool = True,
                 initial_active: int | None = None,
                 sla: SLA | None = None,
                 physical_step_s: float = 60.0,
                 manager_kwargs: dict | None = None,
                 fault_schedule: FaultSchedule | None = None,
                 streams: RandomStreams | None = None,
                 control_plane: ControlPlaneProfile | None = None,
                 power_budget_w: float | None = None,
                 tracer=None,
                 fault_engine_kwargs: dict | None = None):
        if physical_step_s <= 0:
            raise ValueError("physical step must be positive")
        self.env = Environment()
        #: Optional flight recorder (:class:`repro.obs.Tracer`).  Bound
        #: before any plant is built so every subsystem sees it; a
        #: ``None`` tracer leaves all hot paths on their untraced
        #: branches and the run bit-identical to an uninstrumented one.
        self.tracer = tracer.bind(self.env) if tracer is not None else None
        self.dc: DataCenter = spec.build(self.env)
        self.demand_fn = demand_fn
        self.physical_step_s = float(physical_step_s)
        self.sla = sla or SLA("cosim")

        # Bring up the initial fleet synchronously.  A vector fleet
        # takes the fused boot storm (one timer, column updates,
        # bit-identical to per-server power_on); anything else walks
        # the scalar path.
        n_start = (spec.total_servers if initial_active is None
                   else initial_active)
        booting = self.dc.servers[:n_start]
        fleet = getattr(booting[0], "_fleet", None) if booting else None
        if fleet is None or fleet.boot_many(booting) is None:
            for server in booting:
                server.power_on()
        self.env.run(until=spec.boot_s + 1.0)

        self.farm = ServerFarm(self.env, self.dc.servers,
                               demand_fn=demand_fn,
                               dispatch_period_s=30.0)

        # Control plane between the plant and the managers.  ``None``
        # keeps the legacy direct wiring; a perfect profile routes the
        # same calls through synchronous passthrough buses; an
        # impaired profile makes the managers operate on believed
        # state over lossy telemetry and fallible actuation.
        self.control_plane: ControlPlane | None = None
        if control_plane is not None:
            self.control_plane = ControlPlane(
                self.env, self.dc.servers, profile=control_plane,
                streams=streams)
            self.control_plane.attach(farm=self.farm, room=self.dc.room)
            for proc in self.control_plane.processes():
                self.env.process(proc)

        self.env.process(self.farm.run())
        self.env.process(self.dc.room.run())
        self.env.process(self._physical_loop())

        self.fault_engine: FaultDomainEngine | None = None
        if fault_schedule is not None:
            # ``fault_engine_kwargs`` tunes the engine (e.g. the
            # federation outage scenario forces
            # ``generator_start_probability=0.0`` so a utility outage
            # deterministically rides the battery into blackout).
            self.fault_engine = FaultDomainEngine(
                self.env, self.dc, fault_schedule, streams=streams,
                **(fault_engine_kwargs or {}))
            self.env.process(self.fault_engine.run())
            if not managed:
                # No manager to pre-drain hot zones: servers rely on
                # their own protective thermal sensors (§2.2).
                self.fault_engine.install_protective_trips()

        self.manager: MacroResourceManager | None = None
        if managed:
            self.manager = MacroResourceManager(
                self.farm, sla=self.sla,
                power_budget_w=(power_budget_w if power_budget_w
                                is not None
                                else self.dc.ups.steady_rating_w),
                room=self.dc.room,
                heat_by_zone_fn=self.dc.cluster.heat_by_zone,
                fault_engine=self.fault_engine,
                control_plane=self.control_plane,
                **(manager_kwargs or {}))
            self.env.process(self.manager.run())
        self._grid_peak_w = 0.0

    def _physical_loop(self):
        """Sync compute → power/heat → PUE on a fixed cadence."""
        cp = self.control_plane
        while True:
            snapshot = self.dc.sync_physical()
            if snapshot["grid_w"] > self._grid_peak_w:
                self._grid_peak_w = snapshot["grid_w"]
            if cp is not None:
                # Zone temps + facility gauges cross the telemetry
                # network on the physical cadence (no-op if perfect).
                status = (self.fault_engine.status()
                          if self.fault_engine is not None else None)
                cp.publish_physical(status)
            yield self.env.timeout(self.physical_step_s)

    def _resilience_report(self, start: float,
                           end: float) -> ResilienceReport | None:
        engine = self.fault_engine
        if engine is None:
            return None
        records = tuple(r for r in engine.records if r.start_s < end)
        windows = _merge_windows(
            [(r.start_s, r.end_s if r.end_s is not None else end)
             for r in records])
        sla_during = None
        incident_energy = 0.0
        if windows:
            sla_during = self.sla.evaluate_windows(
                self.farm.delay_monitor, self.farm.offered_monitor,
                self.farm.shed_monitor, windows)
            incident_energy = sum(
                self.dc.pue.total_facility_energy_j(a, b)
                for a, b in windows)
        trips = sum(n for _, _, n in engine.protective_trips)
        degraded_s = 0.0
        transitions = 0
        if self.manager is not None:
            trips += sum(n for _, _, n in self.manager.thermal_shutdowns)
            degraded_s = self.manager.degraded_s(start, end)
            transitions = len(self.manager.mode_transitions)
        mttr = engine.mttr_s()
        return ResilienceReport(
            incident_count=len(records),
            incidents=records,
            mttr_s=mttr if not math.isnan(mttr) else 0.0,
            degraded_mode_s=degraded_s,
            mode_transitions=transitions,
            protective_shutdowns=trips,
            blackouts=len(engine.blackouts),
            sla_during_incidents=sla_during,
            incident_energy_j=incident_energy,
        )

    def run(self, duration_s: float) -> CoSimResult:
        """Advance the co-simulation and summarize the interval."""
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        start = self.env.now
        self.env.run(until=start + duration_s)
        return self.summarize(start, self.env.now, duration_s=duration_s)

    def summarize(self, start: float, end: float,
                  duration_s: float | None = None) -> CoSimResult:
        """Summarize an already-simulated ``[start, end]`` interval.

        :meth:`run` advances and summarizes in one call; drivers that
        step the environment themselves (the zone-sharded plant
        advances in macro-period lockstep) call this afterwards to get
        the same :class:`CoSimResult` for the interval they covered.
        ``duration_s`` overrides the reported duration (``run`` passes
        the requested value through exactly; ``end - start`` can pick
        up float rounding).
        """
        report = self.sla.evaluate(self.farm.delay_monitor,
                                   self.farm.offered_monitor,
                                   self.farm.shed_monitor, start, end)
        return CoSimResult(
            duration_s=duration_s if duration_s is not None
            else end - start,
            it_energy_j=self.dc.pue.it_monitor.integral(start, end),
            facility_energy_j=self.dc.pue.total_facility_energy_j(start, end),
            energy_weighted_pue=self.dc.pue.energy_weighted_pue(start, end),
            mean_active_servers=self.farm.active_monitor
            .time_weighted_mean(start, end),
            sla=report,
            thermal_alarms=len(self.dc.room.alarms),
            peak_grid_w=self._grid_peak_w,
            resilience=self._resilience_report(start, end),
            controlplane=(self.control_plane.report()
                          if self.control_plane is not None else None),
        )
