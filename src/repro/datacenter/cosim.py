"""End-to-end cyber-physical co-simulation (the Figure 4 testbench).

:class:`CoSimulation` closes every loop the paper describes in one
harness: workload drives the farm, the farm's servers heat zones and
load the power tree, CRACs chase the heat on their slow schedule, the
PUE meter watches everything, and — optionally — a
:class:`~repro.core.manager.MacroResourceManager` coordinates.

Running the same workload with the manager on and off is the FIG-4
experiment: macro-coordination versus a statically provisioned,
locally-controlled facility.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.control.farm import ServerFarm
from repro.core.manager import MacroResourceManager
from repro.core.sla import SLA, SLAReport
from repro.datacenter.spec import DataCenter, DataCenterSpec
from repro.sim import Environment

__all__ = ["CoSimulation", "CoSimResult"]


@dataclasses.dataclass
class CoSimResult:
    """Summary of one co-simulation run."""

    duration_s: float
    it_energy_j: float
    facility_energy_j: float
    energy_weighted_pue: float
    mean_active_servers: float
    sla: SLAReport
    thermal_alarms: int
    peak_grid_w: float

    @property
    def facility_kwh(self) -> float:
        return self.facility_energy_j / 3.6e6


class CoSimulation:
    """Wire a DataCenter + workload (+ optional macro manager)."""

    def __init__(self, spec: DataCenterSpec,
                 demand_fn: typing.Callable[[float], float],
                 managed: bool = True,
                 initial_active: int | None = None,
                 sla: SLA | None = None,
                 physical_step_s: float = 60.0,
                 manager_kwargs: dict | None = None):
        if physical_step_s <= 0:
            raise ValueError("physical step must be positive")
        self.env = Environment()
        self.dc: DataCenter = spec.build(self.env)
        self.demand_fn = demand_fn
        self.physical_step_s = float(physical_step_s)
        self.sla = sla or SLA("cosim")

        # Bring up the initial fleet synchronously.
        n_start = (spec.total_servers if initial_active is None
                   else initial_active)
        for server in self.dc.servers[:n_start]:
            server.power_on()
        self.env.run(until=spec.boot_s + 1.0)

        self.farm = ServerFarm(self.env, self.dc.servers,
                               demand_fn=demand_fn,
                               dispatch_period_s=30.0)
        self.env.process(self.farm.run())
        self.env.process(self.dc.room.run())
        self.env.process(self._physical_loop())

        self.manager: MacroResourceManager | None = None
        if managed:
            self.manager = MacroResourceManager(
                self.farm, sla=self.sla,
                power_budget_w=self.dc.ups.steady_rating_w,
                room=self.dc.room,
                heat_by_zone_fn=self.dc.cluster.heat_by_zone,
                **(manager_kwargs or {}))
            self.env.process(self.manager.run())
        self._grid_peak_w = 0.0

    def _physical_loop(self):
        """Sync compute → power/heat → PUE on a fixed cadence."""
        while True:
            snapshot = self.dc.sync_physical()
            if snapshot["grid_w"] > self._grid_peak_w:
                self._grid_peak_w = snapshot["grid_w"]
            yield self.env.timeout(self.physical_step_s)

    def run(self, duration_s: float) -> CoSimResult:
        """Advance the co-simulation and summarize the interval."""
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        start = self.env.now
        self.env.run(until=start + duration_s)
        end = self.env.now
        report = self.sla.evaluate(self.farm.delay_monitor,
                                   self.farm.balancer.offered_monitor,
                                   self.farm.shed_monitor, start, end)
        return CoSimResult(
            duration_s=duration_s,
            it_energy_j=self.dc.pue.it_monitor.integral(start, end),
            facility_energy_j=self.dc.pue.total_facility_energy_j(start, end),
            energy_weighted_pue=self.dc.pue.energy_weighted_pue(start, end),
            mean_active_servers=self.farm.active_monitor
            .time_weighted_mean(start, end),
            sla=report,
            thermal_alarms=len(self.dc.room.alarms),
            peak_grid_w=self._grid_peak_w,
        )
