"""Cluster physics over fleet columns: heat maps as one ``bincount``.

The object :class:`~repro.cluster.rack.Cluster` walks racks in Python
for every physical tick — fine at hundreds of racks, measurable at a
thousand.  :class:`VectorCluster` answers the same queries from the
fleet's rack columns:

* ``heat_by_zone`` becomes one ``np.bincount`` over rack→zone ids
  weighted by the rack power column.  ``bincount`` accumulates
  sequentially in input order per bin, so each zone's sum is the
  bit-exact left fold the dict accumulation produced, and the dict is
  rebuilt in first-appearance order — byte-identical output.
* ``power_w`` / ``count_in`` / ``total_effective_capacity`` become
  array folds over the same columns in pool order.

Any rack without a vector slot (or without a zone) drops the whole
cluster back to the inherited object-path implementations, which work
on views too.
"""

from __future__ import annotations

import typing

import numpy as np

from repro.cluster.rack import Cluster, Rack
from repro.cluster.server import ServerState
from repro.fleet.plant import _STATE_TO_CODE, C_ACTIVE

__all__ = ["VectorCluster"]


class VectorCluster(Cluster):
    """A :class:`Cluster` whose aggregate queries run on fleet columns."""

    def __init__(self, name: str, racks: typing.Sequence[Rack]):
        super().__init__(name, racks)
        self._prep_cache = None

    def _prep(self):
        """(slots, rack→zone ids, zone names, rows, fleet) or ``None``.

        Built once: rack membership and zones are fixed after
        construction.  ``None`` (cached as ``()``) means at least one
        rack lacks a vector slot or a zone — fall back to the object
        paths.
        """
        prep = self._prep_cache
        if prep is not None:
            return prep or None
        fleet = None
        slots: list[int] = []
        zone_ids: list[int] = []
        zone_names: list[str] = []
        zone_index: dict[str, int] = {}
        ranges: list[np.ndarray] = []
        for rack in self.racks:
            aggregate = rack.aggregate
            slot = getattr(aggregate, "_slot", None)
            if slot is None or rack.zone is None:
                self._prep_cache = ()
                return None
            if fleet is None:
                fleet = aggregate._fleet
            elif aggregate._fleet is not fleet:
                self._prep_cache = ()
                return None
            zid = zone_index.get(rack.zone)
            if zid is None:
                zid = zone_index[rack.zone] = len(zone_names)
                zone_names.append(rack.zone)
            slots.append(slot)
            zone_ids.append(zid)
            ranges.append(np.arange(aggregate._lo, aggregate._hi))
        prep = (np.asarray(slots), np.asarray(zone_ids), zone_names,
                np.concatenate(ranges), fleet)
        self._prep_cache = prep
        return prep

    def power_w(self) -> float:
        prep = self._prep()
        if prep is None:
            return super().power_w()
        slots, _, _, _, fleet = prep
        return float(np.cumsum(fleet.rack_power[slots])[-1])

    def rack_powers(self) -> list[float]:
        prep = self._prep()
        if prep is None:
            return super().rack_powers()
        slots, _, _, _, fleet = prep
        return fleet.rack_power[slots].tolist()

    def rack_powers_array(self) -> "np.ndarray | None":
        """Rack draws as one float column, or ``None`` off the fast
        path.  Same values as :meth:`rack_powers` — the physical sync
        folds this directly instead of round-tripping a Python list."""
        prep = self._prep()
        if prep is None:
            return None
        slots, _, _, _, fleet = prep
        return fleet.rack_power[slots]

    def heat_by_zone(self) -> dict[str, float]:
        prep = self._prep()
        if prep is None:
            return super().heat_by_zone()
        slots, zone_ids, zone_names, _, fleet = prep
        sums = np.bincount(zone_ids, weights=fleet.rack_power[slots],
                           minlength=len(zone_names))
        return {name: float(sums[i])
                for i, name in enumerate(zone_names)}

    def count_in(self, state: ServerState) -> int:
        prep = self._prep()
        if prep is None:
            return super().count_in(state)
        slots, _, _, rows, fleet = prep
        if state is ServerState.ACTIVE:
            return int(fleet.rack_active[slots].sum())
        code = _STATE_TO_CODE[state]
        return int(np.count_nonzero(fleet.state_code[rows] == code))

    def total_effective_capacity(self) -> float:
        prep = self._prep()
        if prep is None:
            return super().total_effective_capacity()
        _, _, _, rows, fleet = prep
        active = rows[fleet.state_code[rows] == C_ACTIVE]
        if active.size == 0:
            return 0.0
        return float(np.cumsum(fleet.eff_cap[active])[-1])
