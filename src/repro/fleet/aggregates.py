"""Vectorized fleet aggregates: batch kernels with scalar-exact folds.

:class:`VectorAggregate` is the farm-wide pool aggregate of a
:class:`~repro.fleet.plant.VectorFleet`; :class:`VectorRackAggregate`
is the per-rack one, its running state stored in fleet rack columns.
Both subclass the object-path :class:`~repro.cluster.aggregates
.FleetAggregate`, so the scalar watcher protocol — one
``power_changed`` delta at a time, drift-guard recompute every
``recompute_every`` updates — keeps working unchanged.

On top, the farm aggregate exposes *batch* entry points (bulk load
application, bulk P-state moves, vectorized roster/utilization/demand
queries).  Each batch replays the scalar sequence bit-exactly:

* delta folds are sequential left folds (``np.cumsum`` with the
  running total prepended — numpy's cumsum is a sequential fold, so
  the result equals ``total += d`` one delta at a time);
* the drift guard triggers at the exact same update counts, and the
  exact re-sum it performs is reproduced against a snapshot in which
  servers *after* the trigger point still hold their pre-update power;
* power evaluation uses the fleet's grouped batch kernel (see
  ``plant``), which is scalar-exact for every installed model —
  uniform linear fleets take one fused pass, mixed tables and
  non-linear models evaluate per model group.

Batches run only when :meth:`VectorAggregate.batcher` validates the
wiring — every server watched by ``[its rack aggregate, this
aggregate, *extras]``.  Extras marked ``vector_batch_safe`` are
skipped entirely; any other extra exposing ``power_changed`` is
replayed scalar-style, one delta per changed server in pool order,
*after* the rack and farm folds (the three accumulators are disjoint,
so each watcher sees exactly its scalar delta subsequence).  Only
genuinely foreign wiring — sub-pool aggregates in the rack/farm
slots, or watchers without ``power_changed`` — falls back to the
scalar paths, which remain correct on vector views.
"""

from __future__ import annotations

import typing

import numpy as np

from repro.cluster.aggregates import FleetAggregate
from repro.fleet.plant import C_ACTIVE, VectorFleet

__all__ = ["VectorAggregate", "VectorRackAggregate"]


class VectorAggregate(FleetAggregate):
    """Whole-fleet pool aggregate with batch kernels."""

    __slots__ = ("_fleet", "_active_idx", "_wiring_epoch_seen",
                 "_wiring_ok", "_extra_watchers", "_dispatch_memo",
                 "_util_memo", "_resp_memo")

    def __init__(self, fleet: VectorFleet, servers: typing.Sequence,
                 recompute_every: int):
        self._fleet = fleet
        self._active_idx: np.ndarray | None = None
        self._wiring_epoch_seen = -1
        self._wiring_ok = False
        self._extra_watchers: dict[int, tuple] | None = None
        # Fused sense-pipeline memos, all keyed on the fleet's
        # mutation epoch (see VectorFleet.mutation_epoch).
        self._dispatch_memo: tuple | None = None
        self._util_memo: tuple | None = None
        self._resp_memo: tuple | None = None
        super().__init__(servers, recompute_every)
        fleet.farm_aggs.append(self)

    # ------------------------------------------------------------------
    # Scalar watcher protocol (roster cache gains an index twin)
    # ------------------------------------------------------------------
    def state_changed(self, server, old, new) -> None:
        super().state_changed(server, old, new)
        if old is not new:
            self._active_idx = None

    def active_indices(self) -> np.ndarray:
        """Rows of ACTIVE servers, ascending (= pool order)."""
        idx = self._active_idx
        if idx is None:
            idx = self._active_idx = np.flatnonzero(
                self._fleet.state_code == C_ACTIVE)
        return idx

    def active_servers(self) -> list:
        roster = self._active_cache
        if roster is None:
            roster = self._active_cache = self._fleet.objs[
                self.active_indices()].tolist()
        return roster

    def recompute_exact(self) -> float:
        power = float(np.cumsum(self._fleet.power)[-1])
        drift = abs(power - self._power_w)
        self._power_w = power
        self._updates = 0
        return drift

    def verify(self) -> dict:
        power_drift = self.recompute_exact()
        fleet = self._fleet
        count = int(np.count_nonzero(fleet.state_code == C_ACTIVE))
        count_corrected = abs(count - self._active_count)
        self._active_count = count
        roster_repaired = False
        if self._active_cache is not None:
            fresh_idx = np.flatnonzero(fleet.state_code == C_ACTIVE)
            fresh = fleet.objs[fresh_idx].tolist()
            roster_repaired = fresh != self._active_cache
            self._active_cache = fresh
            self._active_idx = fresh_idx
        return {"power_drift_w": power_drift,
                "active_count_corrected": count_corrected,
                "roster_repaired": roster_repaired}

    # ------------------------------------------------------------------
    # Batch gate
    # ------------------------------------------------------------------
    def _wiring_valid(self) -> bool:
        fleet = self._fleet
        if self._wiring_epoch_seen == fleet._wiring_epoch:
            return self._wiring_ok
        self._wiring_epoch_seen = fleet._wiring_epoch
        extras: dict[int, tuple] = {}
        ok = fleet.n_claimed == fleet.n
        if ok:
            racks = fleet.rack_aggs
            slots = fleet.rack_slot
            for i, server in enumerate(fleet.objs.tolist()):
                slot = slots[i]
                watchers = server._watchers
                if (slot < 0 or len(watchers) < 2
                        or watchers[0] is not racks[slot]
                        or watchers[1] is not self):
                    ok = False
                    break
                if len(watchers) > 2:
                    # Batch-safe extras need no notification; anything
                    # else with power_changed gets a scalar replay per
                    # changed row (see _fold_power_deltas).
                    row = tuple(
                        w for w in watchers[2:]
                        if not getattr(w, "vector_batch_safe", False))
                    if row:
                        if any(not callable(getattr(w, "power_changed",
                                                    None))
                               for w in row):
                            ok = False
                            break
                        extras[i] = row
        self._extra_watchers = extras if ok and extras else None
        self._wiring_ok = ok
        return ok

    def batcher(self) -> "VectorAggregate | None":
        """This aggregate when batch mutation is exact, else ``None``.

        Traced runs count the vector-vs-scalar split so a RunReport
        can show how often the batch gate actually opened.
        """
        ok = self._wiring_valid()
        tracer = self._fleet.env.tracer
        if tracer is not None:
            tracer.count("fleet.batch" if ok else "fleet.scalar_fallback")
        return self if ok else None

    # ------------------------------------------------------------------
    # Batch mutators (callers hold a validated batcher)
    # ------------------------------------------------------------------
    def zero_inactive(self) -> None:
        """Zero offered load on non-ACTIVE servers, in pool order.

        Rare (a server just left ACTIVE with load still assigned), so
        the per-server work stays on the scalar path; the vector part
        is finding the rows without touching Python objects.
        """
        fleet = self._fleet
        idle = np.flatnonzero((fleet.state_code != C_ACTIVE)
                              & (fleet.offered != 0.0))
        for i in idle.tolist():
            fleet.objs[i].set_offered_load(0.0)

    def dispatch_loads(self, policy, total_load: float,
                       active: list) -> float:
        """Split ``total_load`` over the active set and apply in bulk.

        Returns the served amount — the same left fold of
        ``delivered_load`` the scalar dispatch accumulates.
        """
        fleet = self._fleet
        idx = self.active_indices()
        split_array = getattr(policy, "split_array", None)
        if split_array is not None:
            loads = split_array(total_load, fleet.eff_cap[idx])
        else:
            shares = policy.split(total_load, active)
            if len(shares) != len(active):
                raise RuntimeError(
                    "policy returned wrong number of shares")
            loads = np.asarray(shares, dtype=np.float64)
        self._apply_active_loads(idx, loads)
        delivered = np.minimum(fleet.offered[idx], fleet.eff_cap[idx])
        return float(np.cumsum(delivered)[-1])

    def fused_dispatch(self, policy, total_load: float,
                       active: list) -> float:
        """One fused zero-inactive → split → apply → serve step.

        Keyed on ``(mutation epoch, total load, policy identity)``: an
        unchanged epoch proves no dispatch input (state, offered,
        effective capacity, P/T-state, caps) moved since the previous
        dispatch, so the previous dispatch's own writes are the
        fixpoint — re-splitting would reproduce exactly the loads
        already applied and every mutator would no-op.  The memo
        therefore returns the cached served value and skips the whole
        pipeline; constant-demand periods (the common bench and
        macro-period case) collapse to one epoch compare per tick.

        Only policies with a pure ``split_array`` are memoized —
        stateful ``split`` implementations may depend on more than
        the fleet columns.
        """
        fleet = self._fleet
        memo = self._dispatch_memo
        if (memo is not None
                and memo[0] == fleet.mutation_epoch
                and memo[1] == total_load
                and memo[2] is policy):
            return memo[3]
        self.zero_inactive()
        served = self.dispatch_loads(policy, total_load, active)
        if getattr(policy, "split_array", None) is not None:
            self._dispatch_memo = (fleet.mutation_epoch, total_load,
                                   policy, served)
        return served

    def batch_set_pstate(self, index: int) -> None:
        """Command ``index`` on every ACTIVE server, in pool order."""
        fleet = self._fleet
        if not 0 <= index < fleet.n_pstates:
            raise ValueError(f"P-state {index} out of range")
        idx = self.active_indices()
        if idx.size == 0:
            return
        # Ascending unique rows covering the whole fleet are exactly
        # ``arange(n)``; slice stores/views then replace every fancy
        # gather (uniform-linear only — grouped kernels mask by fancy
        # index).  The delta fold below keeps the row array: it
        # gathers changed rows only, usually none.
        rows = (slice(None)
                if (idx.size == fleet.state_code.size
                    and fleet.uniform_linear) else idx)
        now = fleet.env.now
        oldp = fleet.power[rows].copy()
        fleet.energy_j[rows] += oldp * (now - fleet.t_last[rows])
        fleet.t_last[rows] = now
        fleet.pstate[rows] = index
        tstates = fleet.tstate[rows]
        eff = fleet.capacity[rows] * fleet._cap_fractions(rows, index,
                                                          tstates)
        fleet.eff_cap[rows] = eff
        newp = fleet._active_power(rows, fleet.offered[rows], eff,
                                   index, tstates)
        fleet.power[rows] = newp
        fleet.mutation_epoch += 1
        self._fold_power_deltas(idx, oldp, newp)

    def _apply_active_loads(self, idx: np.ndarray,
                            loads: np.ndarray) -> None:
        """Bulk ``set_offered_load`` over ACTIVE rows ``idx``.

        Servers whose load is unchanged are skipped entirely: the
        scalar fast path only re-records the held power, which for an
        :class:`~repro.fleet.plant.EnergyMeter` is a lazy no-op (the
        joule total is identical whether the held segment is flushed
        now or at its eventual close).
        """
        fleet = self._fleet
        offered = fleet.offered
        changed = loads != offered[idx]
        if not changed.any():
            return
        cidx = idx[changed]
        new_loads = loads[changed]
        low = float(new_loads.min())
        if low < 0.0:
            raise ValueError(f"negative load {low}")
        now = fleet.env.now
        oldp = fleet.power[cidx].copy()
        fleet.energy_j[cidx] += oldp * (now - fleet.t_last[cidx])
        fleet.t_last[cidx] = now
        offered[cidx] = new_loads
        fleet.mutation_epoch += 1
        newp = fleet._active_power(cidx, new_loads, fleet.eff_cap[cidx],
                                   fleet.pstate[cidx], fleet.tstate[cidx])
        fleet.power[cidx] = newp
        self._fold_power_deltas(cidx, oldp, newp)

    def _fold_power_deltas(self, cidx: np.ndarray, oldp: np.ndarray,
                           newp: np.ndarray) -> None:
        """Push power deltas to rack aggregates, then to this one.

        The scalar funnel interleaves (rack, farm) per server, but the
        two accumulators are disjoint, so racks-then-farm reproduces
        both delta subsequences exactly.
        """
        changed = newp != oldp
        if not changed.any():
            return
        fidx = cidx[changed]
        old = oldp[changed]
        deltas = newp[changed] - old
        self._fleet._fold_rack_deltas(fidx, old, deltas)
        self._fold_farm_deltas(fidx, old, deltas)
        extras = self._extra_watchers
        if extras is not None:
            # Scalar replay for non-batch-safe extras: one delta per
            # changed server, in pool (= mutation) order.  Runs after
            # the rack/farm folds; the accumulators are disjoint, so
            # each watcher still sees exactly its scalar subsequence.
            objs = self._fleet.objs
            for j, row in enumerate(fidx.tolist()):
                row_extras = extras.get(row)
                if row_extras is not None:
                    server = objs[row]
                    delta = float(deltas[j])
                    for w in row_extras:
                        w.power_changed(server, delta)

    def _fold_farm_deltas(self, fidx: np.ndarray, old: np.ndarray,
                          deltas: np.ndarray) -> None:
        every = self.recompute_every
        updates = self._updates
        total = self._power_w
        power = self._fleet.power
        m = deltas.size
        j = 0
        while j < m:
            until_trigger = every - updates
            if m - j < until_trigger:
                total = float(np.cumsum(
                    np.concatenate(([total], deltas[j:m])))[-1])
                updates += m - j
                break
            # The delta at the trigger is discarded (the scalar guard
            # re-sums instead of folding it); everything before folds.
            pos = j + until_trigger - 1
            if until_trigger > 1:
                total = float(np.cumsum(
                    np.concatenate(([total], deltas[j:pos])))[-1])
            snap = power.copy()
            snap[fidx[pos + 1:]] = old[pos + 1:]
            total = float(np.cumsum(snap)[-1])
            updates = 0
            j = pos + 1
        self._power_w = total
        self._updates = updates

    # ------------------------------------------------------------------
    # Vectorized read-only queries (exact regardless of wiring)
    # ------------------------------------------------------------------
    def committed_count(self) -> int:
        return self._fleet.committed_count()

    def pick_startable(self, quarantined=None):
        return self._fleet.pick_startable(quarantined)

    def pick_startable_many(self, quarantined, count: int) -> list:
        return self._fleet.pick_startable_many(quarantined, count)

    def total_demand_w(self) -> float | None:
        return self._fleet.total_demand_w()

    def mean_utilization_active(self) -> float:
        """Mean utilization over the (non-empty) active set.

        Memoized on the mutation epoch: both inputs (offered,
        effective capacity) bump it on every write, so an unchanged
        epoch returns the cached mean without touching the columns.
        """
        fleet = self._fleet
        memo = self._util_memo
        if memo is not None and memo[0] == fleet.mutation_epoch:
            return memo[1]
        idx = self.active_indices()
        util = np.minimum(fleet.offered[idx] / fleet.eff_cap[idx], 1.0)
        value = float(np.cumsum(util)[-1]) / idx.size
        self._util_memo = (fleet.mutation_epoch, value)
        return value

    def mean_response_time_active(self, delay_cap_s: float) -> float:
        """Mean M/M/1 response time over the (non-empty) active set.

        Memoized like :meth:`mean_utilization_active`, additionally
        keyed on the delay cap.
        """
        fleet = self._fleet
        memo = self._resp_memo
        if (memo is not None and memo[0] == fleet.mutation_epoch
                and memo[1] == delay_cap_s):
            return memo[2]
        idx = self.active_indices()
        arrival = fleet.offered[idx]
        service = np.maximum(fleet.eff_cap[idx], 1e-9)
        with np.errstate(divide="ignore"):
            inverse = 1.0 / (service - arrival)
        resp = np.where(arrival >= service, delay_cap_s,
                        np.minimum(inverse, delay_cap_s))
        value = float(np.cumsum(resp)[-1]) / idx.size
        self._resp_memo = (fleet.mutation_epoch, delay_cap_s, value)
        return value


class VectorRackAggregate(FleetAggregate):
    """Per-rack aggregate whose running state lives in fleet columns.

    The scalar watcher protocol is inherited untouched; the property
    overrides below move the running sum, update counter and active
    count into ``rack_power`` / ``rack_updates`` / ``rack_active``
    slots so the fleet's batch delta fold can see and update every
    rack without touching aggregate objects.
    """

    __slots__ = ("_fleet", "_slot", "_lo", "_hi")

    def __init__(self, fleet: VectorFleet, lo: int, hi: int,
                 servers: typing.Sequence, recompute_every: int):
        self._fleet = fleet
        self._lo = lo
        self._hi = hi
        self._slot = fleet._register_rack(self, lo, hi, recompute_every)
        super().__init__(servers, recompute_every)

    @property
    def _power_w(self) -> float:
        return float(self._fleet.rack_power[self._slot])

    @_power_w.setter
    def _power_w(self, value: float) -> None:
        self._fleet.rack_power[self._slot] = value

    @property
    def _updates(self) -> int:
        return int(self._fleet.rack_updates[self._slot])

    @_updates.setter
    def _updates(self, value: int) -> None:
        self._fleet.rack_updates[self._slot] = value

    @property
    def _active_count(self) -> int:
        return int(self._fleet.rack_active[self._slot])

    @_active_count.setter
    def _active_count(self, value: int) -> None:
        self._fleet.rack_active[self._slot] = value

    def recompute_exact(self) -> float:
        fleet = self._fleet
        power = float(np.cumsum(fleet.power[self._lo:self._hi])[-1])
        drift = abs(power - self._power_w)
        self._power_w = power
        self._updates = 0
        return drift
