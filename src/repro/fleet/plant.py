"""Structure-of-arrays vector plant: the fleet as numpy columns.

The object backend keeps one Python :class:`~repro.cluster.server
.Server` per machine, which caps co-simulations around a few thousand
servers — every dispatch tick walks Python objects.  The vector plant
inverts the layout: all per-server *hot* state (lifecycle code,
P-/T-state, offered load, capacity, wall power, cap, zone id, rack
slot, energy) lives in preallocated numpy arrays owned by a
:class:`VectorFleet`, and :class:`VectorServer` is a thin **view**
whose hot attributes are class-level properties redirecting into those
columns.

Because the views redirect *storage only*, every inherited scalar code
path (state machine, capping search, power funnel) runs unchanged and
bit-identically; the batch entry points in
:mod:`repro.fleet.aggregates` replace whole loops with array passes
that replay the exact same IEEE operation sequence (left folds via
``np.cumsum``, elementwise min/clip, sequential ``np.bincount``).  The
equivalence guarantee — identical energies, rosters and RNG streams
between backends — is enforced by the backend-equivalence test suite.

Power models are organised into *model groups*: every distinct
(P/T-state table contents, nonlinearity) pair installed on the fleet
gets one group, and each server row carries its group id.  Batch power
evaluation runs per group — the single-linear-group fleet (the
overwhelmingly common case) keeps the original fused kernel, while
mixed tables and non-linear models evaluate group by group with the
same scalar-exact arithmetic.  Non-linear shapes use element-wise
``math.pow`` (libm) rather than ``np.power``, because Python's
``u ** r`` and ``np.power`` differ by 1 ulp on some inputs; the
element-wise path is bit-identical to the scalar model.
"""

from __future__ import annotations

import itertools
import math
import typing

import numpy as np

from repro.cluster.server import Server, ServerState
from repro.power.models import ServerPowerModel
from repro.sim import Environment

__all__ = ["VectorFleet", "VectorServer", "EnergyMeter"]

#: Lifecycle codes, in enum declaration order (OFF=0 .. FAILED=5).
_STATES: tuple[ServerState, ...] = tuple(ServerState)
_STATE_TO_CODE: dict[ServerState, int] = {s: i for i, s in enumerate(_STATES)}
C_OFF = _STATE_TO_CODE[ServerState.OFF]
C_BOOTING = _STATE_TO_CODE[ServerState.BOOTING]
C_ACTIVE = _STATE_TO_CODE[ServerState.ACTIVE]
C_SLEEPING = _STATE_TO_CODE[ServerState.SLEEPING]
C_WAKING = _STATE_TO_CODE[ServerState.WAKING]


class _WatcherList(list):
    """A server's watcher list that notifies the fleet on rewiring.

    Batch mutation is only exact when every server's watchers are the
    canonical ``[rack aggregate, farm aggregate, *batch-safe extras]``
    wiring.  Any structural change bumps the fleet's wiring epoch so
    cached validation is redone before the next batch.
    """

    __slots__ = ("_fleet",)

    def __init__(self, items: typing.Iterable, fleet: "VectorFleet"):
        super().__init__(items)
        self._fleet = fleet
        fleet._wiring_epoch += 1

    def _bump(self) -> None:
        self._fleet._wiring_epoch += 1

    def append(self, item):  # noqa: D102 - list API
        super().append(item)
        self._bump()

    def extend(self, items):  # noqa: D102 - list API
        super().extend(items)
        self._bump()

    def insert(self, index, item):  # noqa: D102 - list API
        super().insert(index, item)
        self._bump()

    def remove(self, item):  # noqa: D102 - list API
        super().remove(item)
        self._bump()

    def clear(self):  # noqa: D102 - list API
        super().clear()
        self._bump()


def _pow_elements(x: np.ndarray, r: float) -> np.ndarray:
    """Element-wise ``x ** r`` via libm — bit-identical to Python pow.

    ``np.power`` differs from CPython's ``float.__pow__`` by 1 ulp on
    some inputs, so the non-linear utilization shape must go through
    ``math.pow`` (the same libm call the scalar model makes) to keep
    batch evaluation bit-exact.
    """
    return np.fromiter(map(math.pow, x.tolist(), itertools.repeat(r)),
                       np.float64, count=x.size)


class _ModelGroup:
    """One distinct (P/T-state table, nonlinearity) combination.

    ``cap`` / ``dyn`` are the table's memoized fraction matrices as
    float64 arrays; ``has_t`` mirrors the scalar model's *"if
    table.tstates"* branch (tables without T-states always read
    column 0 regardless of the commanded T-state).
    """

    __slots__ = ("cap", "dyn", "r", "has_t", "n_pstates")

    def __init__(self, table, r: float):
        self.cap = np.array(table._cap_frac, dtype=np.float64)
        self.dyn = np.array(table._dyn_frac, dtype=np.float64)
        self.r = float(r)
        self.has_t = bool(table.tstates)
        self.n_pstates = len(table.pstates)


class EnergyMeter:
    """Constant-memory stand-in for a server's power :class:`Monitor`.

    The object backend keeps a full ``(time, value)`` history per
    server; at 20k+ servers that is hundreds of MB nobody reads — the
    headline results only ever need ∫P dt.  The meter folds each held
    power segment into a running joule total at the moment the segment
    closes (exactly the step interpretation the Monitor integrates
    under) and holds no history.

    The *held* value is the fleet's cached power column: the power
    funnel records the new sample **before** updating the cache, so at
    ``record()`` time the column still holds the value that was in
    force since ``t_last`` — the same invariant batch mutators
    maintain when they flush energy before overwriting power.
    """

    __slots__ = ("_fleet", "_idx", "name", "_t0")

    def __init__(self, fleet: "VectorFleet", idx: int, name: str = ""):
        self._fleet = fleet
        self._idx = idx
        self.name = name
        self._t0 = float(fleet.env.now)
        fleet.t_last[idx] = self._t0

    def record(self, value: float, time: float | None = None) -> None:
        """Close the held segment at ``time`` (defaults to now)."""
        fleet = self._fleet
        i = self._idx
        t = fleet.env.now if time is None else float(time)
        last = fleet.t_last[i]
        if t < last:
            raise ValueError(
                f"sample at t={t} precedes last sample t={last}")
        fleet.energy_j[i] += fleet.power[i] * (t - last)
        fleet.t_last[i] = t

    @property
    def last(self) -> float:
        """Currently held power (the fleet's cached column)."""
        return float(self._fleet.power[self._idx])

    def integral(self, start: float | None = None,
                 end: float | None = None) -> float:
        """∫P dt from the meter's birth to ``end`` (joules).

        Only full-range queries are answered — the meter keeps no
        history, which is the point.  Windowed per-server energy needs
        the object backend.
        """
        if start is not None and start > self._t0:
            raise ValueError(
                "EnergyMeter keeps no history; windowed integrals need "
                "the object backend (a per-server Monitor)")
        fleet = self._fleet
        i = self._idx
        t = fleet.env.now if end is None else float(end)
        if t < fleet.t_last[i]:
            raise ValueError(
                f"end={t} precedes last sample t={fleet.t_last[i]}")
        return float(fleet.energy_j[i]
                     + fleet.power[i] * (t - fleet.t_last[i]))


class VectorFleet:
    """Preallocated per-server state columns plus batch kernels.

    Construct with the exact fleet size, then create ``n``
    :class:`VectorServer` views against it.  Aggregation objects are
    obtained through :meth:`make_aggregate` (racks claim contiguous
    slots; the farm-wide pool gets the vectorized
    :class:`~repro.fleet.aggregates.VectorAggregate`).
    """

    def __init__(self, env: Environment, n: int):
        if n < 1:
            raise ValueError(f"fleet size must be >= 1, got {n}")
        self.env = env
        self.n = int(n)
        self.n_claimed = 0
        f8 = np.float64
        self.state_code = np.zeros(n, dtype=np.int8)
        self.offered = np.zeros(n, dtype=f8)
        self.power = np.zeros(n, dtype=f8)
        self.eff_cap = np.zeros(n, dtype=f8)
        self.capacity = np.zeros(n, dtype=f8)
        self.cap_w = np.full(n, np.nan, dtype=f8)   # NaN == uncapped
        self.energy_j = np.zeros(n, dtype=f8)
        self.t_last = np.zeros(n, dtype=f8)
        self.sleep_w = np.zeros(n, dtype=f8)
        self.idle_w = np.zeros(n, dtype=f8)
        self.cpu_dyn_w = np.zeros(n, dtype=f8)
        self.other_dyn_w = np.zeros(n, dtype=f8)
        self.off_w = np.zeros(n, dtype=f8)
        self.boot_w = np.zeros(n, dtype=f8)
        self.pstate = np.zeros(n, dtype=np.int16)
        self.tstate = np.zeros(n, dtype=np.int16)
        self.zone_id = np.full(n, -1, dtype=np.int32)
        self.rack_slot = np.full(n, -1, dtype=np.int32)
        self.objs = np.empty(n, dtype=object)
        self.zone_names: list[str] = []
        self._zone_ids: dict[str, int] = {}
        #: Bumped whenever any server's watcher list changes shape;
        #: aggregates re-validate batch wiring when it moves.
        self._wiring_epoch = 0
        #: Bumped whenever a dispatch-relevant column changes —
        #: lifecycle state, offered load, effective capacity,
        #: capacity, P/T-state, power cap.  The farm aggregate's
        #: fused-dispatch and mean-utilization/response memos key on
        #: it: an unchanged epoch proves the active set, the split
        #: inputs, and the per-server loads are all unchanged, so the
        #: whole sense pipeline for a repeated demand level is a
        #: cache hit.  Power/energy columns deliberately do *not*
        #: bump (they are outputs of dispatch, not inputs).
        self.mutation_epoch = 0
        # Model groups: one per distinct (table contents, r) pair.
        # ``cap_frac`` / ``dyn_frac`` alias group 0's tables so the
        # single-group fast paths can index them directly.
        self.groups: list[_ModelGroup] = []
        self.group_id = np.zeros(n, dtype=np.int32)
        self._group_by_table: dict[tuple, int] = {}
        self._group_by_content: dict[tuple, int] = {}
        self.cap_frac: np.ndarray | None = None
        self.dyn_frac: np.ndarray | None = None
        self.n_pstates = 0
        self.n_tstates = 0
        #: True while every installed model shares one fraction table
        #: (with T-states) and is linear (r == 1.0) — the single-group
        #: fast path; grouped evaluation covers everything else with
        #: the same scalar-exact arithmetic.
        self.uniform_linear = False
        # Rack slots (amortized-doubling columns, like server rows).
        self.n_racks = 0
        cap = 8
        self.rack_power = np.zeros(cap, dtype=f8)
        self.rack_updates = np.zeros(cap, dtype=np.int64)
        self.rack_active = np.zeros(cap, dtype=np.int64)
        self.rack_recompute = np.zeros(cap, dtype=np.int64)
        self.rack_lo = np.zeros(cap, dtype=np.int64)
        self.rack_hi = np.zeros(cap, dtype=np.int64)
        self.rack_aggs: list = []
        self.farm_aggs: list = []

    # ------------------------------------------------------------------
    # Row lifecycle
    # ------------------------------------------------------------------
    def _claim(self, server: "VectorServer") -> int:
        i = self.n_claimed
        if i >= self.n:
            raise ValueError(
                f"fleet is full ({self.n} rows); size it to the exact "
                f"server count at construction")
        self.n_claimed = i + 1
        self.objs[i] = server
        return i

    def build_servers(self, env: Environment,
                      names: typing.Sequence[str],
                      power_model: ServerPowerModel,
                      capacity: float = 100.0,
                      boot_s: float = 120.0,
                      wake_s: float = 15.0,
                      sleep_w: float = 10.0,
                      zone: str | None = None) -> list["VectorServer"]:
        """Bulk-construct OFF servers sharing one model on fresh rows.

        Field-for-field equivalent to constructing each
        :class:`VectorServer` in turn with the same arguments — same
        validations, same column state (held power is the model's off
        draw, energy meters zeroed at ``env.now``), same per-server
        Python objects (state log seeded with the OFF entry, empty
        watcher list, ``EnergyMeter`` monitor) — but the uniform-args
        checks are hoisted and every column write is one slice store,
        which is what makes building a 10\\ :sup:`5`-row plant cheap.
        """
        # Server.__init__'s validations, hoisted (the args are shared).
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if boot_s < 0 or wake_s < 0:
            raise ValueError("transition latencies cannot be negative")
        if sleep_w < 0 or sleep_w > power_model.peak_w:
            raise ValueError(f"sleep_w {sleep_w} outside [0, peak]")
        count = len(names)
        if count == 0:
            return []
        i0 = self.n_claimed
        if i0 + count > self.n:
            raise ValueError(
                f"fleet is full ({self.n} rows); size it to the exact "
                f"server count at construction")
        rows = slice(i0, i0 + count)
        now = float(env.now)
        bs = float(boot_s)
        ws = float(wake_s)
        off_state = ServerState.OFF
        objs = self.objs
        servers: list[VectorServer] = []
        append = servers.append
        new = object.__new__
        for k, name in enumerate(names):
            idx = i0 + k
            srv = new(VectorServer)
            d = srv.__dict__
            d["_fleet"] = self
            d["_idx"] = idx
            d["env"] = env
            d["name"] = name
            d["model"] = power_model
            d["boot_s"] = bs
            d["wake_s"] = ws
            d["_transition"] = None
            d["power_monitor"] = EnergyMeter(self, idx,
                                             name=f"{name}.power_w")
            d["state_log"] = [(now, off_state)]
            d["_watchers"] = _WatcherList((), self)
            objs[idx] = srv
            append(srv)
        self.n_claimed = i0 + count
        # Column state after the scalar constructor chain: OFF row,
        # zeroed load/P/T/eff-cap, uncapped, meter seeded at ``now``
        # with the off draw held (the initial ``_record_power``).
        self.state_code[rows] = C_OFF
        self.capacity[rows] = float(capacity)
        self.sleep_w[rows] = float(sleep_w)
        self.zone_id[rows] = self._zone_code(zone)
        self.offered[rows] = 0.0
        self.pstate[rows] = 0
        self.tstate[rows] = 0
        self.cap_w[rows] = np.nan
        self.eff_cap[rows] = 0.0
        self.t_last[rows] = now
        self.energy_j[rows] = 0.0
        self.power[rows] = power_model.off_w
        # ``_install_model`` over the uniform model, one slice each.
        self.idle_w[rows] = power_model._idle_w
        self.cpu_dyn_w[rows] = power_model._cpu_dynamic_w
        self.other_dyn_w[rows] = power_model._other_dynamic_w
        self.off_w[rows] = power_model.off_w
        self.boot_w[rows] = power_model.boot_w
        self.group_id[rows] = self._group_for(power_model)
        self.mutation_epoch += 1
        return servers

    def _install_model(self, idx: int, model: ServerPowerModel) -> None:
        self.idle_w[idx] = model._idle_w
        self.cpu_dyn_w[idx] = model._cpu_dynamic_w
        self.other_dyn_w[idx] = model._other_dynamic_w
        self.off_w[idx] = model.off_w
        self.boot_w[idx] = model.boot_w
        self.group_id[idx] = self._group_for(model)

    def _group_for(self, model: ServerPowerModel) -> int:
        """Group id for ``model``, deduplicated by table *contents*.

        Same-object tables resolve through an identity cache; distinct
        table objects with equal fraction matrices share a group (the
        matrices are what evaluation reads, so equal contents means
        bit-identical results).
        """
        table = model.pstates
        key = (id(table), model.nonlinearity)
        gid = self._group_by_table.get(key)
        if gid is not None:
            return gid
        content = (model.nonlinearity, bool(table.tstates),
                   tuple(map(tuple, table._cap_frac)),
                   tuple(map(tuple, table._dyn_frac)))
        gid = self._group_by_content.get(content)
        if gid is None:
            gid = len(self.groups)
            group = _ModelGroup(table, model.nonlinearity)
            self.groups.append(group)
            self._group_by_content[content] = gid
            if gid == 0:
                self.cap_frac = group.cap
                self.dyn_frac = group.dyn
                self.n_pstates = group.n_pstates
                self.n_tstates = len(table.tstates)
            else:
                # Mixed fleets validate batch P-state commands against
                # the shortest ladder, so a batch either applies to
                # every active server or raises before mutating.
                self.n_pstates = min(self.n_pstates, group.n_pstates)
            self.uniform_linear = (len(self.groups) == 1
                                   and group.has_t and group.r == 1.0)
        self._group_by_table[key] = gid
        return gid

    def _zone_code(self, name: str | None) -> int:
        if name is None:
            return -1
        zid = self._zone_ids.get(name)
        if zid is None:
            zid = self._zone_ids[name] = len(self.zone_names)
            self.zone_names.append(name)
        return zid

    # ------------------------------------------------------------------
    # Aggregate construction
    # ------------------------------------------------------------------
    def make_aggregate(self, servers: typing.Sequence, recompute_every: int,
                       kind: str = "pool"):
        """Vectorized aggregate over ``servers``, or ``None``.

        ``kind="rack"`` claims a contiguous unclaimed row range as a
        rack slot; ``kind="pool"`` requires the whole (fully claimed)
        fleet.  Anything else — sub-pools, overlapping racks, foreign
        servers — returns ``None`` and the caller falls back to the
        plain object-path :class:`FleetAggregate`, which works on
        views too.
        """
        from repro.fleet.aggregates import (
            VectorAggregate,
            VectorRackAggregate,
        )
        try:
            idxs = [s._idx for s in servers]
        except AttributeError:
            return None
        if not idxs:
            return None
        lo, hi = idxs[0], idxs[-1] + 1
        if idxs != list(range(lo, hi)):
            return None
        objs = self.objs
        if any(objs[i] is not s for i, s in zip(idxs, servers)):
            return None
        if kind == "rack":
            if bool((self.rack_slot[lo:hi] >= 0).any()):
                return None
            return VectorRackAggregate(self, lo, hi, servers,
                                       recompute_every)
        if lo == 0 and hi == self.n and self.n_claimed == self.n:
            return VectorAggregate(self, servers, recompute_every)
        return None

    def _register_rack(self, agg, lo: int, hi: int,
                       recompute_every: int) -> int:
        slot = self.n_racks
        if slot == len(self.rack_power):
            cap = 2 * slot
            for attr in ("rack_power", "rack_updates", "rack_active",
                         "rack_recompute", "rack_lo", "rack_hi"):
                old = getattr(self, attr)
                new = np.zeros(cap, dtype=old.dtype)
                new[:slot] = old
                setattr(self, attr, new)
        self.rack_recompute[slot] = int(recompute_every)
        self.rack_lo[slot] = lo
        self.rack_hi[slot] = hi
        self.rack_slot[lo:hi] = slot
        self.rack_aggs.append(agg)
        self.n_racks = slot + 1
        self._wiring_epoch += 1
        return slot

    # ------------------------------------------------------------------
    # Batch power kernel (bit-identical to the scalar model)
    # ------------------------------------------------------------------
    def _active_power(self, idx: np.ndarray, offered: np.ndarray,
                      eff: np.ndarray, p, t) -> np.ndarray:
        """Wall power of ACTIVE rows — the scalar model, vectorized.

        Replays ``ServerPowerModel.power`` term for term: same
        divisions, same clamps, same left-to-right products, so each
        element is the bit-exact scalar result.  ``eff`` must be the
        effective capacity at the queried (p, t) — strictly positive
        for ACTIVE rows.  The uniform-linear fleet takes one fused
        pass; everything else evaluates per model group (non-linear
        shapes through element-wise libm pow).
        """
        if self.uniform_linear:
            # Uniform P-/T-state columns (the common case after a
            # batch command) collapse to one scalar table lookup —
            # the same table entry every row would gather, so the
            # broadcast product is element-for-element identical.
            if isinstance(p, np.ndarray) and p.size and (p == p[0]).all():
                p = int(p[0])
            if isinstance(t, np.ndarray) and t.size and (t == t[0]).all():
                t = int(t[0])
            u = np.minimum(offered / eff, 1.0)
            cap = self.cap_frac[p, t]
            scale = self.dyn_frac[p, t]
            tt = np.clip(u * cap, 0.0, 1.0)
            return (self.idle_w[idx] + u * self.cpu_dyn_w[idx] * scale
                    + tt * self.other_dyn_w[idx])
        out = np.empty(idx.size, dtype=np.float64)
        for gid, m, rows in self._group_masks(idx):
            group = self.groups[gid]
            p_g = p[m] if isinstance(p, np.ndarray) else p
            if group.has_t:
                t_g = t[m] if isinstance(t, np.ndarray) else t
            else:
                t_g = 0
            cap = group.cap[p_g, t_g]
            scale = group.dyn[p_g, t_g]
            u = np.minimum(offered[m] / eff[m], 1.0)
            r = group.r
            if r == 1.0:
                cpu_shape = u
                other_shape = np.clip(u * cap, 0.0, 1.0)
            else:
                cpu_shape = np.minimum(2.0 * u - _pow_elements(u, r), 1.0)
                tt = np.clip(u * cap, 0.0, 1.0)
                other_shape = np.minimum(2.0 * tt - _pow_elements(tt, r),
                                         1.0)
            out[m] = (self.idle_w[rows]
                      + cpu_shape * self.cpu_dyn_w[rows] * scale
                      + other_shape * self.other_dyn_w[rows])
        return out

    def _group_masks(self, idx: np.ndarray):
        """Yield ``(gid, mask, rows)`` per model group present in ``idx``.

        ``mask`` selects the group's positions within ``idx`` and
        ``rows`` the corresponding fleet rows.  Single-group fleets
        yield one full-coverage slice without any masking cost.
        """
        if len(self.groups) == 1:
            yield 0, slice(None), idx
            return
        gids = self.group_id[idx]
        for gid in np.unique(gids).tolist():
            m = gids == gid
            yield gid, m, idx[m]

    def _cap_fractions(self, idx: np.ndarray, p, t) -> np.ndarray:
        """Per-row capacity fraction at (p, t), honoring model groups.

        The batch twin of ``PStateTable.capacity_fraction`` — tables
        without T-states read column 0 just like the scalar lookup.
        """
        if self.uniform_linear:
            # Same uniform-column collapse as the batch power kernel:
            # one scalar lookup broadcasts to the identical per-row
            # fractions a gathered index would produce.
            if isinstance(p, np.ndarray) and p.size and (p == p[0]).all():
                p = int(p[0])
            if isinstance(t, np.ndarray) and t.size and (t == t[0]).all():
                t = int(t[0])
            return self.cap_frac[p, t]
        out = np.empty(idx.size, dtype=np.float64)
        for gid, m, _rows in self._group_masks(idx):
            group = self.groups[gid]
            p_g = p[m] if isinstance(p, np.ndarray) else p
            if group.has_t:
                t_g = t[m] if isinstance(t, np.ndarray) else t
            else:
                t_g = 0
            out[m] = group.cap[p_g, t_g]
        return out

    def _fold_rack_deltas(self, fidx: np.ndarray, old: np.ndarray,
                          deltas: np.ndarray) -> None:
        """Fold per-server power deltas into the rack running sums.

        ``fidx`` is ascending (pool order is rack-major), so each
        rack's deltas form one contiguous run.  Racks whose update
        counter stays below the recompute threshold are folded with a
        zero-padded row-cumsum (trailing ``+ 0.0`` adds are exact);
        racks that cross it replay the scalar trigger sequence against
        a snapshot of their row range, reproducing the drift guard's
        exact re-sum at the exact same update count.
        """
        slots = self.rack_slot[fidx]
        m = slots.size
        starts = np.flatnonzero(np.r_[True, slots[1:] != slots[:-1]])
        counts = np.diff(np.r_[starts, m])
        gslots = slots[starts]
        newu = self.rack_updates[gslots] + counts
        trig = newu >= self.rack_recompute[gslots]
        quiet = ~trig
        if quiet.any():
            rows = np.flatnonzero(quiet)
            width = int(counts[rows].max())
            mat = np.zeros((rows.size, width + 1))
            mat[:, 0] = self.rack_power[gslots[rows]]
            grp = np.repeat(np.arange(gslots.size), counts)
            col = np.arange(m) - np.repeat(starts, counts) + 1
            keep = quiet[grp]
            rowmap = np.cumsum(quiet) - 1
            mat[rowmap[grp[keep]], col[keep]] = deltas[keep]
            self.rack_power[gslots[rows]] = np.cumsum(mat, axis=1)[:, -1]
            self.rack_updates[gslots[rows]] = newu[rows]
        if trig.any():
            for g in np.flatnonzero(trig).tolist():
                slot = int(gslots[g])
                s, c = int(starts[g]), int(counts[g])
                self._replay_rack_trigger(slot, fidx[s:s + c],
                                          old[s:s + c], deltas[s:s + c])

    def _replay_rack_trigger(self, slot: int, gidx: np.ndarray,
                             gold: np.ndarray, gd: np.ndarray) -> None:
        total = float(self.rack_power[slot])
        updates = int(self.rack_updates[slot])
        every = int(self.rack_recompute[slot])
        lo, hi = int(self.rack_lo[slot]), int(self.rack_hi[slot])
        c = gd.size
        j = 0
        while j < c:
            k = every - updates
            if c - j < k:
                for d in gd[j:c].tolist():
                    total += d
                updates += c - j
                break
            for d in gd[j:j + k - 1].tolist():
                total += d
            pos = j + k - 1
            snap = self.power[lo:hi].copy()
            snap[gidx[pos + 1:] - lo] = gold[pos + 1:]
            total = float(np.cumsum(snap)[-1])
            updates = 0
            j = pos + 1
        self.rack_power[slot] = total
        self.rack_updates[slot] = updates

    # ------------------------------------------------------------------
    # Read-only fleet scans (exact regardless of wiring)
    # ------------------------------------------------------------------
    def committed_count(self) -> int:
        """Servers committed to serving: ACTIVE | BOOTING | WAKING."""
        code = self.state_code
        return int(np.count_nonzero((code == C_ACTIVE)
                                    | (code == C_BOOTING)
                                    | (code == C_WAKING)))

    def pick_startable(self, quarantined=None):
        """First SLEEPING (else first OFF) server, in pool order,
        skipping quarantined zones — the On/Off scan, vectorized."""
        code = self.state_code
        eligible = None
        if quarantined:
            qids = [self._zone_ids[z] for z in quarantined
                    if z in self._zone_ids]
            if qids:
                eligible = ~np.isin(self.zone_id, qids)
        for target in (C_SLEEPING, C_OFF):
            mask = code == target
            if eligible is not None:
                mask &= eligible
            hits = np.flatnonzero(mask)
            if hits.size:
                return self.objs[hits[0]]
        return None

    def pick_startable_many(self, quarantined, count: int) -> list:
        """The first ``count`` startable servers, SLEEPING before OFF.

        One scan equals ``count`` repeated :meth:`pick_startable`
        calls because starting a server only removes *it* from the
        candidate pool.
        """
        if count <= 0:
            return []
        code = self.state_code
        eligible = None
        if quarantined:
            qids = [self._zone_ids[z] for z in quarantined
                    if z in self._zone_ids]
            if qids:
                eligible = ~np.isin(self.zone_id, qids)
        picked: list = []
        for target in (C_SLEEPING, C_OFF):
            mask = code == target
            if eligible is not None:
                mask &= eligible
            hits = np.flatnonzero(mask)[:count - len(picked)]
            picked.extend(self.objs[hits].tolist())
            if len(picked) >= count:
                break
        return picked

    def total_demand_w(self) -> float | None:
        """Uncapped fleet demand (the capper input), or ``None`` when
        the fleet has unclaimed rows (callers fall back to the scalar
        fold).  Mixed tables and non-linear models evaluate through
        the grouped kernel — no scalar fallback."""
        tracer = self.env.tracer
        if self.n_claimed != self.n:
            if tracer is not None:
                tracer.count("fleet.demand_scalar_fallback")
            return None
        if tracer is not None:
            tracer.count("fleet.demand_vector")
        code = self.state_code
        demand = self.off_w.copy()          # OFF and FAILED rows
        mask = (code == C_BOOTING) | (code == C_WAKING)
        demand[mask] = self.boot_w[mask]
        mask = code == C_SLEEPING
        demand[mask] = self.sleep_w[mask]
        active = np.flatnonzero(code == C_ACTIVE)
        if active.size:
            # ``flatnonzero`` rows are ascending and unique, so a
            # full-coverage active set IS ``arange(n)``: slice views
            # replace every per-column gather (uniform-linear fleets
            # only — the grouped kernel masks by fancy index).
            rows = (slice(None)
                    if (active.size == code.size
                        and self.uniform_linear) else active)
            p = self.pstate[rows]
            cap0 = self.capacity[rows] * self._cap_fractions(
                rows, p, 0)
            demand[rows] = self._active_power(
                rows, self.offered[rows], cap0, p, 0)
        return float(np.cumsum(demand)[-1])

    def uncap_candidates(self) -> np.ndarray:
        """Rows where ``remove_cap()`` is not a no-op, in pool order."""
        return np.flatnonzero(~np.isnan(self.cap_w) | (self.tstate != 0))

    # ------------------------------------------------------------------
    # Fused boot storm
    # ------------------------------------------------------------------
    def boot_many(self, servers) -> "object | None":
        """Boot a batch of OFF servers in one fused storm.

        Replays exactly what ``server.power_on()`` per server would do
        — the same state-log entries, EnergyMeter folds, rack
        running-sum delta folds (drift guard included) and transition
        guard — but with the per-server work in column operations and
        one shared timer process instead of one process per server.
        Built for the bring-up storm in ``CoSimulation.__init__``,
        where tens of thousands of scalar OFF→BOOTING→ACTIVE walks
        dominate construction time.

        Preconditions (else returns ``None`` and the caller falls back
        to scalar ``power_on`` calls, which are always correct): every
        server is a view on this fleet and currently OFF, rows are in
        ascending pool order, boot times are uniform, per-row capacity
        at the current P/T-state is positive, and each server's only
        watcher is its rack aggregate — true during plant bring-up,
        before any farm/balancer aggregate attaches.  Returns the
        shared transition event (servers' ``_transition`` points at
        it, so a mid-boot ``power_on()`` still returns a live event).
        """
        if not servers:
            return None
        rack_aggs = self.rack_aggs
        rack_slot = self.rack_slot
        rows_list = []
        boot_s = None
        prev = -1
        for s in servers:
            if getattr(s, "_fleet", None) is not self:
                return None
            i = s._idx
            if (i <= prev or self.state_code[i] != C_OFF
                    or s._transition is not None):
                return None
            watchers = s._watchers
            slot = rack_slot[i]
            if (slot < 0 or len(watchers) != 1
                    or watchers[0] is not rack_aggs[slot]):
                return None
            if boot_s is None:
                boot_s = s.boot_s
            elif s.boot_s != boot_s:
                return None
            rows_list.append(i)
            prev = i
        rows = np.asarray(rows_list, dtype=np.int64)
        p = self.pstate[rows]
        t = self.tstate[rows]
        eff = self.capacity[rows] * self._cap_fractions(rows, p, t)
        if not (eff > 0.0).all():
            return None

        env = self.env
        now = env.now
        booting = _STATES[C_BOOTING]
        for s in servers:
            s.state_log.append((now, booting))
        self.state_code[rows] = C_BOOTING
        self.mutation_epoch += 1
        for slot in np.unique(rack_slot[rows]).tolist():
            # FleetAggregate.state_changed on OFF→BOOTING only drops
            # the roster cache (the active count is untouched).
            rack_aggs[slot]._active_cache = None
        # The scalar power funnel: flush the held EnergyMeter segment
        # at the old power, then publish the new sample and fold the
        # deltas into the rack running sums.
        self.eff_cap[rows] = 0.0
        oldp = self.power[rows].copy()
        self.energy_j[rows] += oldp * (now - self.t_last[rows])
        self.t_last[rows] = now
        newp = self.boot_w[rows].copy()
        self.power[rows] = newp
        changed = newp != oldp
        if changed.any():
            fidx = rows[changed]
            old = oldp[changed]
            self._fold_rack_deltas(fidx, old, newp[changed] - old)

        fleet = self
        active = _STATES[C_ACTIVE]

        def body(env):
            yield env.timeout(boot_s)
            t1 = env.now
            # Same guard as the scalar transition body: only rows
            # still BOOTING complete; anything preempted (e.g. a
            # protective fail) keeps its new state.
            still = fleet.state_code[rows] == C_BOOTING
            brows = rows[still]
            objs = fleet.objs[brows]
            rewired = any(
                len(s._watchers) != 1
                or s._watchers[0] is not rack_aggs[rack_slot[s._idx]]
                for s in objs)
            if rewired:
                # A watcher attached mid-boot: replay the scalar walk,
                # which notifies whatever is wired now.
                for s in objs:
                    s._set_state(active)
                    s._transition = None
                for s in servers:
                    if s._transition is proc:
                        s._transition = None
                return
            if brows.size:
                for s in objs:
                    s.state_log.append((t1, active))
                fleet.state_code[brows] = C_ACTIVE
                fleet.mutation_epoch += 1
                slots = rack_slot[brows]
                for slot in np.unique(slots).tolist():
                    agg = rack_aggs[slot]
                    agg._active_cache = None
                np.add.at(fleet.rack_active, slots, 1)
                bp = fleet.pstate[brows]
                bt = fleet.tstate[brows]
                beff = (fleet.capacity[brows]
                        * fleet._cap_fractions(brows, bp, bt))
                oldp = fleet.power[brows].copy()
                fleet.energy_j[brows] += oldp * (t1 - fleet.t_last[brows])
                fleet.t_last[brows] = t1
                fleet.eff_cap[brows] = beff
                newp = fleet._active_power(brows, fleet.offered[brows],
                                           beff, bp, bt)
                fleet.power[brows] = newp
                changed = newp != oldp
                if changed.any():
                    fidx = brows[changed]
                    old = oldp[changed]
                    fleet._fold_rack_deltas(fidx, old,
                                            newp[changed] - old)
            for s in servers:
                if s._transition is proc:
                    s._transition = None

        proc = env.process(body(env), name="fleet:boot_many")
        for s in servers:
            s._transition = proc
        return proc

    def __repr__(self) -> str:
        return (f"<VectorFleet n={self.n} claimed={self.n_claimed} "
                f"racks={self.n_racks} uniform_linear={self.uniform_linear}>")


def _column_property(column: str, doc: str, tracked: bool = False):
    """Float column accessor: plain-float reads, direct writes.

    ``tracked`` columns are dispatch inputs: their setters bump the
    fleet's :attr:`~VectorFleet.mutation_epoch` so the farm
    aggregate's memos invalidate.
    """

    def fget(self):
        return float(getattr(self._fleet, column)[self._idx])

    if tracked:
        def fset(self, value):
            fleet = self._fleet
            getattr(fleet, column)[self._idx] = value
            fleet.mutation_epoch += 1
    else:
        def fset(self, value):
            getattr(self._fleet, column)[self._idx] = value

    return property(fget, fset, doc=doc)


def _int_column_property(column: str, doc: str, tracked: bool = False):
    def fget(self):
        return int(getattr(self._fleet, column)[self._idx])

    if tracked:
        def fset(self, value):
            fleet = self._fleet
            getattr(fleet, column)[self._idx] = value
            fleet.mutation_epoch += 1
    else:
        def fset(self, value):
            getattr(self._fleet, column)[self._idx] = value

    return property(fget, fset, doc=doc)


class VectorServer(Server):
    """A :class:`Server` whose hot state lives in fleet columns.

    Everything behavioural is inherited; the class-level properties
    below redirect reads and writes of the hot attributes into the
    owning :class:`VectorFleet`'s arrays, so scalar code paths stay
    bit-identical while batch kernels see every server's state
    contiguously.
    """

    def __init__(self, fleet: VectorFleet, env: Environment, name: str,
                 **kwargs):
        self._fleet = fleet
        self._idx = fleet._claim(self)
        super().__init__(env, name, **kwargs)
        fleet._install_model(self._idx, self.model)
        # Wrap the watcher list so rewiring invalidates batch caches.
        self._watchers = _WatcherList(self._watchers, fleet)

    def _make_power_monitor(self):
        return EnergyMeter(self._fleet, self._idx,
                           name=f"{self.name}.power_w")

    # -- lifecycle state (code column <-> enum singletons) -------------
    @property
    def _state(self) -> ServerState:
        return _STATES[self._fleet.state_code[self._idx]]

    @_state.setter
    def _state(self, value: ServerState) -> None:
        fleet = self._fleet
        fleet.state_code[self._idx] = _STATE_TO_CODE[value]
        fleet.mutation_epoch += 1

    # -- cap (NaN column <-> None) --------------------------------------
    @property
    def _cap_w(self) -> float | None:
        value = self._fleet.cap_w[self._idx]
        return None if np.isnan(value) else float(value)

    @_cap_w.setter
    def _cap_w(self, value: float | None) -> None:
        self._fleet.cap_w[self._idx] = (np.nan if value is None
                                        else value)
        self._fleet.mutation_epoch += 1

    # -- thermal zone (interned name <-> id column) ---------------------
    @property
    def zone(self) -> str | None:
        zid = self._fleet.zone_id[self._idx]
        return None if zid < 0 else self._fleet.zone_names[zid]

    @zone.setter
    def zone(self, name: str | None) -> None:
        self._fleet.zone_id[self._idx] = self._fleet._zone_code(name)

    # -- plain float / int columns --------------------------------------
    _offered_load = _column_property("offered", "Offered load column.",
                                     tracked=True)
    _power_w = _column_property("power", "Cached wall-power column.")
    _eff_cap = _column_property("eff_cap", "Effective-capacity column.",
                                tracked=True)
    capacity = _column_property("capacity", "P0 capacity column.",
                                tracked=True)
    sleep_w = _column_property("sleep_w", "Sleep-draw column.")
    _pstate = _int_column_property("pstate", "P-state column.",
                                   tracked=True)
    _tstate = _int_column_property("tstate", "T-state column.",
                                   tracked=True)
