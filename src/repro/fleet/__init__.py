"""Structure-of-arrays vector plant for fleet-scale co-simulation.

Select it with ``DataCenterSpec(backend="vector")``: servers become
thin views over preallocated numpy columns, aggregates fold deltas in
bulk, and the cluster heat map is one ``bincount`` — with object-path
bit-equivalence guaranteed (see ``plant`` module docstring).
"""

from repro.fleet.aggregates import VectorAggregate, VectorRackAggregate
from repro.fleet.cluster import VectorCluster
from repro.fleet.plant import EnergyMeter, VectorFleet, VectorServer

__all__ = [
    "EnergyMeter",
    "VectorAggregate",
    "VectorCluster",
    "VectorFleet",
    "VectorRackAggregate",
    "VectorServer",
]
