#!/usr/bin/env python3
"""Quickstart: build a data center, run a day, compare management modes.

This is the smallest end-to-end tour of the library:

1. declare a tier-2 facility with ``DataCenterSpec``;
2. give it a diurnal workload;
3. co-simulate one day twice — statically provisioned vs coordinated
   by the macro-resource management layer (the paper's Figure 4);
4. print the energy, PUE, and SLA outcome of each.

Run:  python examples/quickstart.py
"""

from repro.core import SLA
from repro.datacenter import CoSimulation, DataCenterSpec
from repro.workload import DiurnalProfile

DAY_S = 86_400.0


def main() -> None:
    # A small tier-2 room: 8 racks x 10 servers, 2 CRACs, 4 zones.
    spec = DataCenterSpec(name="quickstart", racks=8, servers_per_rack=10,
                          zones=4, cracs=2)

    # Diurnal demand peaking at 60 % of total compute capacity
    # (afternoon ~2x the after-midnight trough, per the paper's Fig 3).
    profile = DiurnalProfile(day_night_ratio=2.0)
    peak = spec.total_servers * spec.server_capacity * 0.6
    demand = lambda t: peak * profile(t)

    sla = SLA("web", response_target_s=0.15, availability=0.995)

    ups_kw = spec.total_servers * spec.server_peak_w * 1.25 / 1000.0
    print(f"Facility: {spec.total_servers} servers, UPS {ups_kw:.0f} kW, "
          f"tier {spec.tier.name}")
    print(f"Workload: diurnal, peak {peak:.0f} work units/s\n")

    results = {}
    for label, managed in [("static (all servers on)", False),
                           ("macro-managed (Figure 4)", True)]:
        sim = CoSimulation(spec, demand, managed=managed, sla=sla)
        results[label] = sim.run(DAY_S)

    print(f"{'mode':<28}{'energy kWh':>12}{'PUE':>8}"
          f"{'avg servers':>13}{'SLA':>6}")
    for label, result in results.items():
        print(f"{label:<28}{result.facility_kwh:>12.1f}"
              f"{result.energy_weighted_pue:>8.2f}"
              f"{result.mean_active_servers:>13.1f}"
              f"{'ok' if result.sla.compliant else 'VIOL':>6}")

    static = results["static (all servers on)"]
    managed = results["macro-managed (Figure 4)"]
    saving = 1.0 - managed.facility_energy_j / static.facility_energy_j
    print(f"\nMacro management saved {saving:.0%} of facility energy "
          f"over the day while meeting the SLA.")


if __name__ == "__main__":
    main()
