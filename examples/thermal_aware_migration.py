#!/usr/bin/env python3
"""The CRAC-sensitivity migration hazard, and how to avoid it (§5.1).

The paper (citing Project Genome [30]) describes a concrete trap:

    locations A and B share a CRAC; the CRAC is very sensitive to
    servers at A and insensitive to B.  Migrate the load from A to B
    and shut A's servers down, and the CRAC — seeing its return air
    cool — *raises* the supply temperature.  B's servers, with extra
    load and little cold air, overheat and trip thermal alarms.

This example builds exactly that room, executes the oblivious
consolidation, and watches the alarm fire; then re-plans the same
consolidation through the cooling-aware placer, which predicts the
hazard and places the load safely.

Run:  python examples/thermal_aware_migration.py
"""

from repro.cooling import CRACUnit, MachineRoom, ThermalZone
from repro.core import CoolingAwarePlacer
from repro.sim import Environment

HEAT_W = 20_000.0  # the workload's total heat, wherever it lives


def build_room(env):
    zones = [ThermalZone("A", initial_temp_c=24.0, alarm_temp_c=32.0),
             ThermalZone("B", initial_temp_c=24.0, alarm_temp_c=32.0)]
    crac = CRACUnit("crac", transport_delay_s=120.0,
                    return_setpoint_c=25.0, deadband_c=0.5,
                    initial_supply_c=14.0)
    # The §5.1 asymmetry: the CRAC sees zone A 7.5x better than B.
    room = MachineRoom(env, zones, [crac], [[3000.0], [400.0]],
                       step_s=30.0)
    return room, zones, crac


def run_scenario(heat_a, heat_b, label, hours=6):
    env = Environment()
    room, zones, crac = build_room(env)
    zones[0].set_heat_load(heat_a)
    zones[1].set_heat_load(heat_b)
    env.process(room.run())
    env.run(until=hours * 3600.0)
    print(f"\n{label}")
    print(f"  zone A: {zones[0].temp_c:5.1f} C   "
          f"zone B: {zones[1].temp_c:5.1f} C   "
          f"CRAC supply: {crac.supply_temp_c:4.1f} C")
    if room.alarms:
        alarm = room.alarms[0]
        print(f"  !! THERMAL ALARM in zone {alarm.zone} at "
              f"t={alarm.time_s / 3600:.1f} h ({alarm.temp_c:.1f} C) — "
              f"servers would shut down")
    else:
        print("  no thermal alarms")
    return room


def main() -> None:
    print("Room: zones A and B, one CRAC; conductance A=3000 W/K, "
          "B=400 W/K.")
    print(f"Workload heat: {HEAT_W / 1000:.0f} kW total.")

    run_scenario(HEAT_W, 0.0,
                 "1) Load at A (where the CRAC can see it):")

    room = run_scenario(0.0, HEAT_W,
                        "2) Oblivious consolidation: move everything "
                        "to B, shut A down:")

    # --- The cooling-aware re-plan ------------------------------------
    env = Environment()
    room, zones, crac = build_room(env)
    placer = CoolingAwarePlacer(room, margin_c=1.0)

    verdict_b = placer.assess({"A": 0.0, "B": HEAT_W})
    print("\n3) Cooling-aware macro layer vets the same move first:")
    print(f"   predicted zone temps: "
          + ", ".join(f"{z}={t:.1f}C"
                      for z, t in verdict_b.predicted_temps_c.items()))
    print(f"   verdict: {'SAFE' if verdict_b.safe else 'REJECTED'} "
          f"(hottest: zone {verdict_b.hottest_zone} at "
          f"{verdict_b.hottest_temp_c:.1f} C, alarm at 32 C)")

    chosen = placer.choose_zone(HEAT_W, {"A": 0.0, "B": 0.0})
    print(f"   placer's choice for the {HEAT_W / 1000:.0f} kW load: "
          f"zone {chosen}")
    print("\nThe §5.1 lesson: the cooling system 'knows nothing about "
          "the states of the servers' —\nso the macro layer must "
          "predict thermal consequences before it migrates, not after.")


if __name__ == "__main__":
    main()
