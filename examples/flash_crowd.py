#!/usr/bin/env python3
"""Surviving the Animoto flash crowd with elastic autoscaling.

The paper (§3, quoting the Berkeley cloud report) recounts Animoto
growing "from 50 servers to 3500 servers in three days" after its
Facebook launch, then falling to well below the peak.  This example
replays that surge against four allocation strategies and prints the
§3.1 dilemma as numbers: static fleets either drop the surge or waste
the year, while elastic allocation does neither.

Run:  python examples/flash_crowd.py
"""

from repro.core import ReactiveAutoscaler, static_provisioning
from repro.workload import animoto_demand


def main() -> None:
    times, demand = animoto_demand(step_s=900.0)
    days = times[-1] / 86_400.0
    print(f"Animoto-style surge over {days:.0f} days: "
          f"{demand[0]:.0f} -> {demand.max():.0f} servers of demand\n")

    strategies = {
        "static @ baseline (50)": static_provisioning(times, demand, 50.0),
        "static @ mean": static_provisioning(times, demand,
                                             float(demand.mean())),
        "static @ peak (3500)": static_provisioning(times, demand, 3500.0),
        "elastic autoscaler": ReactiveAutoscaler(
            headroom=0.2, provision_delay_s=600.0, max_up_rate=0.5,
            scale_down_delay_s=3600.0).replay(times, demand),
    }

    print(f"{'strategy':<24}{'unmet demand':>13}{'waste':>8}"
          f"{'peak fleet':>12}")
    for label, result in strategies.items():
        print(f"{label:<24}{result.unmet_fraction:>13.1%}"
              f"{result.waste_fraction:>8.1%}"
              f"{result.peak_fleet:>12.0f}")

    elastic = strategies["elastic autoscaler"]
    print(f"\nElastic allocation served "
          f"{elastic.served_fraction:.1%} of demand with a peak fleet of "
          f"{elastic.peak_fleet:.0f} and released it afterwards "
          f"(final fleet {elastic.fleet[-1]:.0f}).")

    # Show the trajectory coarsely, one row per day.
    print("\nday   demand   fleet")
    per_day = int(86_400.0 / 900.0)
    for d in range(int(days)):
        i = d * per_day
        bar = "#" * int(elastic.fleet[i] / 100)
        print(f"{d:>3}  {demand[i]:>7.0f} {elastic.fleet[i]:>7.0f}  {bar}")


if __name__ == "__main__":
    main()
