#!/usr/bin/env python3
"""Routing work across a federation of data centers (§3.2).

The paper asks: "Where to migrate power consuming operations to best
utilize cooling and power conversion efficiency across data centers
without sacrificing user experience?"  This example builds a
three-site federation with very different PUEs and electricity
prices, routes four regions' demand through it, and compares the
energy-aware plan against plain nearest-site routing — including what
happens when the cheap site fills up, and a what-if where the desert
site installs economizers (PUE 2.2 → 1.5).

Run:  python examples/geo_federation.py
"""

from repro.core import GeoScheduler, RegionDemand, SiteSpec


def build_sites(desert_pue=2.2):
    return [
        SiteSpec("nordics", capacity=2_000.0, pue=1.25,
                 energy_price_per_kwh=0.05),
        SiteSpec("midwest", capacity=2_000.0, pue=1.8,
                 energy_price_per_kwh=0.09),
        SiteSpec("desert", capacity=2_000.0, pue=desert_pue,
                 energy_price_per_kwh=0.14),
    ]


DEMANDS = [
    RegionDemand("eu", demand=1_200.0,
                 latency_ms={"nordics": 40.0, "midwest": 110.0,
                             "desert": 140.0}),
    RegionDemand("us-east", demand=1_000.0,
                 latency_ms={"nordics": 90.0, "midwest": 30.0,
                             "desert": 60.0}),
    RegionDemand("us-west", demand=800.0,
                 latency_ms={"nordics": 160.0, "midwest": 55.0,
                             "desert": 20.0}),
    RegionDemand("apac", demand=600.0,
                 latency_ms={"nordics": 190.0, "midwest": 140.0,
                             "desert": 100.0}),
]


def describe(plan, scheduler):
    by_site = {}
    for (region, site), amount in plan.allocation.items():
        by_site.setdefault(site, []).append((region, amount))
    for site in scheduler.sites:
        placed = by_site.get(site.name, [])
        total = sum(a for _, a in placed)
        detail = ", ".join(f"{r}:{a:.0f}" for r, a in placed) or "-"
        print(f"  {site.name:<10} {total:>6.0f}/{site.capacity:.0f}  "
              f"({detail})")
    print(f"  cost: ${plan.cost_per_hour:.2f}/h, "
          f"unplaced: {plan.total_unplaced:.0f}")


def main() -> None:
    scheduler = GeoScheduler(build_sites())
    print("Sites: nordics (PUE 1.25, $0.05), midwest (1.8, $0.09), "
          "desert (2.2, $0.14)\n")

    print("Energy-aware routing (latency ceilings respected):")
    plan = scheduler.route(DEMANDS)
    describe(plan, scheduler)

    naive = scheduler.cost_of_naive_plan(DEMANDS)
    print(f"\nNearest-site routing would cost ${naive:.2f}/h — "
          f"{naive / plan.cost_per_hour:.1f}x more.")

    print("\nWhat-if: the desert site installs air-side economizers "
          "(PUE 2.2 -> 1.5):")
    upgraded = GeoScheduler(build_sites(desert_pue=1.5))
    plan2 = upgraded.route(DEMANDS)
    describe(plan2, upgraded)
    saving = plan.cost_per_hour - plan2.cost_per_hour
    print(f"\nThe facility upgrade shows up directly in the routing "
          f"bill: ${saving:.2f}/h saved\n(the cross-layer coupling "
          f"the macro-resource layer exists to exploit).")


if __name__ == "__main__":
    main()
