#!/usr/bin/env python3
"""The §5.1 pathology, live: oblivious DVFS × On/Off vs coordination.

The paper's case study [29]: a DVFS policy that slows CPUs when
utilization is low, composed with a DVS-oblivious On/Off policy that
adds machines when delay is high, chases its own tail —

    slow CPUs -> higher delay -> more machines -> lower utilization
    -> slower CPUs -> ...

This example runs both compositions on an identical constant workload
and prints the spiral as it happens, then the final scoreboard.

Run:  python examples/coordinated_power.py
"""

from repro.cluster import Server
from repro.control import (
    CoordinatedController,
    DelayBasedOnOff,
    ServerFarm,
    UtilizationDVFS,
)
from repro.sim import Environment

HOURS = 8


def build_farm():
    env = Environment()
    servers = [Server(env, f"s{i}", capacity=100.0, boot_s=120.0,
                      wake_s=15.0) for i in range(20)]
    for server in servers[:10]:
        server.power_on()
    env.run(until=130.0)
    farm = ServerFarm(env, servers, demand_fn=lambda t: 600.0,
                      dispatch_period_s=30.0)
    env.process(farm.run())
    return env, farm


def main() -> None:
    print("Workload: constant 600 work/s on servers of capacity 100 "
          "(needs ~6-8 machines).\n")

    # --- Uncoordinated: two locally-sensible controllers -------------
    env, farm = build_farm()
    dvfs = UtilizationDVFS(farm, period_s=60.0, low=0.7, high=0.95)
    onoff = DelayBasedOnOff(farm, period_s=120.0,
                            high_delay_s=0.045, low_delay_s=0.01)
    env.process(dvfs.run())
    env.process(onoff.run())

    print("UNCOORDINATED composition (watch the spiral):")
    print(f"{'t/min':>6}{'active':>8}{'P-state':>9}{'util':>7}"
          f"{'delay ms':>10}{'power W':>9}")
    for minute in range(0, HOURS * 60 + 1, 30):
        env.run(until=130.0 + minute * 60.0)
        pstate = dvfs.pstate_monitor.last
        pstate = 0 if pstate != pstate else int(pstate)  # NaN before 1st tick
        print(f"{minute:>6}{len(farm.active_servers()):>8}"
              f"{pstate:>9}"
              f"{farm.mean_utilization():>7.2f}"
              f"{farm.mean_response_time_s() * 1000:>10.1f}"
              f"{farm.total_power_w():>9.0f}")
    uncoordinated = farm

    # --- Coordinated: one controller owns both knobs -----------------
    env, farm = build_farm()
    coordinator = CoordinatedController(farm, period_s=120.0,
                                        target_utilization=0.8,
                                        headroom=1.1)
    env.process(coordinator.run())
    env.run(until=130.0 + HOURS * 3600.0)
    coordinated = farm

    power_u = uncoordinated.power_monitor.time_weighted_mean(1000.0, None)
    power_c = coordinated.power_monitor.time_weighted_mean(1000.0, None)
    delay_u = uncoordinated.delay_monitor.time_weighted_mean(1000.0, None)
    delay_c = coordinated.delay_monitor.time_weighted_mean(1000.0, None)

    print(f"\n{'composition':<16}{'avg power W':>12}{'avg delay ms':>14}"
          f"{'machines':>10}{'P-state':>9}")
    print(f"{'uncoordinated':<16}{power_u:>12.0f}{delay_u * 1000:>14.1f}"
          f"{len(uncoordinated.active_servers()):>10}"
          f"{max(s.pstate for s in uncoordinated.active_servers()):>9}")
    print(f"{'coordinated':<16}{power_c:>12.0f}{delay_c * 1000:>14.1f}"
          f"{len(coordinated.active_servers()):>10}"
          f"{max(s.pstate for s in coordinated.active_servers()):>9}")
    print(f"\nCoordination uses {1 - power_c / power_u:.0%} less power "
          f"*and* delivers lower delay —\nexactly the paper's point: "
          f"both oblivious policies had the same energy goal.")


if __name__ == "__main__":
    main()
