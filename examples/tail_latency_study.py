#!/usr/bin/env python3
"""Tail latency under power management (§3 + §4.2).

"Users expect sub-second response time" — and user experience lives in
the p99, not the mean.  This example pushes discrete requests through
a request-granular farm and shows two things fluid models cannot:

1. dispatch policy moves the tail: join-shortest-queue vs round-robin
   at the same load;
2. fleet-wide DVFS that looks harmless on mean utilization multiplies
   the p99 — the §4.2 response-time trade-off, measured end to end.

Run:  python examples/tail_latency_study.py
"""

import numpy as np

from repro.cluster import RequestFarm, Server
from repro.sim import Environment


def run(policy="jsq", pstate=0, rate=240.0, horizon=300.0, seed=1):
    env = Environment()
    servers = [Server(env, f"s{i}", capacity=100.0, boot_s=10.0)
               for i in range(4)]
    for server in servers:
        server.power_on()
    env.run(until=11.0)
    for server in servers:
        server.set_pstate(pstate)
    farm = RequestFarm(env, servers, policy=policy,
                       rng=np.random.default_rng(seed))
    env.process(farm.drive_poisson(rate, horizon_s=horizon))
    env.run(until=horizon + 20.0)
    return farm.stats(discard_first=300)


def row(label, stats):
    print(f"{label:<26}{stats.mean_s * 1000:>9.1f}"
          f"{stats.p50_s * 1000:>9.1f}{stats.p95_s * 1000:>9.1f}"
          f"{stats.p99_s * 1000:>9.1f}{stats.completed:>10,}")


def main() -> None:
    print("4 servers x 100 units/s, Poisson arrivals at rho = 0.6, "
          "exponential work\n")
    print(f"{'scenario':<26}{'mean ms':>9}{'p50 ms':>9}{'p95 ms':>9}"
          f"{'p99 ms':>9}{'served':>10}")

    jsq = run(policy="jsq")
    rr = run(policy="round-robin")
    row("JSQ dispatch", jsq)
    row("round-robin dispatch", rr)
    print(f"  -> same servers, same load: round-robin's p99 is "
          f"{rr.p99_s / jsq.p99_s:.1f}x JSQ's\n")

    fast = run(pstate=0)
    slow = run(pstate=3)  # 0.7x clock: rho climbs from 0.60 to 0.86
    row("all servers at P0", fast)
    row("all servers at P3 (0.7x)", slow)
    print(f"  -> a 30% clock cut at 60% load multiplies the p99 "
          f"by {slow.p99_s / fast.p99_s:.1f}x (mean only "
          f"{slow.mean_s / fast.mean_s:.1f}x)")
    print("\nThe §4.2 lesson: fleet-wide DVFS must be sized against "
          "the tail, not the mean —\nwhich is why the coordinated "
          "controller trims speed only after fleet size is right.")


if __name__ == "__main__":
    main()
