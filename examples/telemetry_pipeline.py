#!/usr/bin/env python3
"""Data management at fleet scale (§5.3): multi-scale telemetry.

The paper's arithmetic: 10,000 servers × 100 counters sampled every
15 s is millions of points per minute; "archiving and analyzing years
of data at fine granularity is prohibitively difficult."  This example
runs a scaled-down fleet through the multi-scale pipeline and shows:

* the four §5.3 query archetypes (trend / pattern / correlation /
  anomaly) answered from the right resolution,
* the measured query-cost speedup vs a raw scan,
* the storage saved by expiring out-of-band raw data and by
  error-bounded compression.

Run:  python examples/telemetry_pipeline.py
"""

import numpy as np

from repro.telemetry import (
    DeadbandCompressor,
    MultiScalePyramid,
    QueryEngine,
    data_points_per_minute,
    naive_scan_cost,
)

DAY = 86_400.0
DAYS = 14


def synth_cpu(seed, spike_at=None):
    """Two weeks of 15 s CPU-utilization samples with diurnal shape."""
    rng = np.random.default_rng(seed)
    times = np.arange(0.0, DAYS * DAY, 15.0)
    trend = 0.35 + 0.25 * np.sin(2 * np.pi * (times - 8 * 3600) / DAY)
    noise = rng.normal(0.0, 0.03, len(times))
    values = np.clip(trend + noise, 0.0, 1.0) * 100.0
    if spike_at is not None:
        mask = (times >= spike_at) & (times < spike_at + 90.0)
        values[mask] = 100.0
    return times, values


def main() -> None:
    print("Paper's fleet arithmetic (§5.3):")
    print(f"  10,000 servers x 100 counters / 15 s = "
          f"{data_points_per_minute(10_000, 100, 15.0):,.0f} points/min")
    print("  (the paper prints 2.4M — its own parameters give 4.0M;"
          " see EXPERIMENTS.md)\n")

    # Build pyramids for two "servers" behind one load balancer, one
    # with a planted anomaly.
    pyramid_a = MultiScalePyramid(retain_raw_s=2 * DAY)
    pyramid_b = MultiScalePyramid(retain_raw_s=2 * DAY)
    times, values_a = synth_cpu(seed=1, spike_at=9.3 * DAY)
    _, values_b = synth_cpu(seed=2)
    pyramid_a.ingest_array(times, values_a)
    pyramid_b.ingest_array(times, values_b)
    engine_a, engine_b = QueryEngine(pyramid_a), QueryEngine(pyramid_b)

    raw_cost = naive_scan_cost(DAYS * DAY, 15.0)
    print(f"Ingested {len(times):,} raw samples per counter "
          f"({DAYS} days @ 15 s).\n")

    print("Query archetypes (cost = buckets touched):")
    _, trend = engine_a.daily_trend(0.0, DAYS * DAY)
    print(f"  long-term trend:   {len(trend)} daily means, "
          f"cost {engine_a.last_cost} vs raw {raw_cost:,} "
          f"({raw_cost / engine_a.last_cost:,.0f}x cheaper)")

    _, pattern = engine_a.hourly_pattern(3 * DAY, 4 * DAY)
    print(f"  daily pattern:     {len(pattern)} hourly means, "
          f"cost {engine_a.last_cost} "
          f"(peak hour {int(np.argmax(pattern))}:00)")

    corr = engine_a.correlation(engine_b, 5 * DAY, 6 * DAY)
    print(f"  LB health:         detrended corr(a, b) = {corr:.2f} "
          f"(balanced servers track each other)")

    spikes = engine_a.spikes(0.0, DAYS * DAY, z_threshold=6.0)
    when = spikes[0][0] / DAY if spikes else float("nan")
    print(f"  anomaly detection: {len(spikes)} spike minute(s), "
          f"first at day {when:.1f} (planted at day 9.3)\n")

    kept = pyramid_a.storage_points()
    print(f"Storage with 2-day raw retention: {kept:,} buckets "
          f"vs {raw_cost:,} raw points "
          f"({raw_cost / kept:.0f}x smaller), coarse history intact.")

    comp = DeadbandCompressor(epsilon=2.0)
    ratio = comp.compression_ratio(times, values_a)
    error = comp.max_error(times, values_a)
    print(f"Dead-band compression of the raw band: {ratio:.1f}x "
          f"with max error {error:.2f} (bound 2.0).")


if __name__ == "__main__":
    main()
