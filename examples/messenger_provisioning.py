#!/usr/bin/env python3
"""Energy-aware provisioning for a connection-intensive service.

Reproduces the scenario behind the paper's Figure 3 and §4.3 (Chen et
al., NSDI'08): a Windows-Live-Messenger-like service whose user count
swings ~2x between the afternoon peak and the small hours.  We
synthesize a week of logins/connections, then compare three
provisioning policies on the same trace:

* static peak provisioning (every server always on),
* reactive On/Off (delay-triggered),
* forecast On/Off with hysteresis (Chen et al. style).

The interesting output is the trade-off row by row: both On/Off
policies eliminate most of the idle-floor energy (~60 % of peak per
powered-on server, §4.3), but the reactive one briefly sheds load at
every demand ramp because machines take minutes to boot, while the
forecast policy scales ahead of the ramp and sheds nothing.

Run:  python examples/messenger_provisioning.py
"""

import math

from repro.cluster import Server
from repro.control import DelayBasedOnOff, ForecastOnOff, ServerFarm
from repro.sim import Environment
from repro.workload import MessengerTraceGenerator

WEEK_S = 7 * 86_400.0
CONNECTIONS_PER_SERVER = 20_000.0  # Chen et al. report O(10^4)/server


def build_farm(demand_fn, n_servers, initially_on):
    env = Environment()
    servers = [Server(env, f"msn-{i}", capacity=CONNECTIONS_PER_SERVER,
                      boot_s=120.0, wake_s=15.0)
               for i in range(n_servers)]
    for server in servers[:initially_on]:
        server.power_on()
    env.run(until=121.0)
    farm = ServerFarm(env, servers, demand_fn=demand_fn,
                      dispatch_period_s=60.0)
    env.process(farm.run())
    return env, farm


def main() -> None:
    print("Synthesizing one week of Messenger-like load (Figure 3)...")
    trace = MessengerTraceGenerator(seed=7).generate(WEEK_S, step_s=60.0)
    trace = trace.normalized(peak_connections=1_000_000.0,
                             peak_login_rate=1_400.0)
    print(f"  peak connections: {trace.connections.max():,.0f}")
    print(f"  peak login rate:  {trace.login_rate.max():,.0f}/s")
    ratio = (trace.mean_over_hours(13, 16, weekdays_only=True)
             / trace.mean_over_hours(1, 4, weekdays_only=True))
    print(f"  afternoon/midnight connection ratio: {ratio:.2f} "
          f"(paper: ~2)\n")

    def demand_fn(t):
        index = min(int(t // 60.0), len(trace.connections) - 1)
        return float(trace.connections[index])

    fleet = math.ceil(trace.connections.max() / (CONNECTIONS_PER_SERVER
                                                 * 0.75)) + 2

    runs = {}
    # Static: everything on all week.
    env, farm = build_farm(demand_fn, fleet, initially_on=fleet)
    env.run(until=WEEK_S)
    runs["static peak"] = farm

    # Reactive delay-based On/Off.
    env, farm = build_farm(demand_fn, fleet, initially_on=fleet)
    # Thresholds in per-server M/M/1 delay units: add a machine above
    # ~90 % utilization (delay 5e-4 s), drop one below ~50 % (1.2e-4 s).
    controller = DelayBasedOnOff(farm, period_s=120.0,
                                 high_delay_s=5e-4, low_delay_s=1.2e-4)
    env.process(controller.run())
    env.run(until=WEEK_S)
    runs["reactive on/off"] = farm

    # Forecast-based with hysteresis.
    env, farm = build_farm(demand_fn, fleet, initially_on=fleet)
    controller = ForecastOnOff(farm, period_s=300.0,
                               target_utilization=0.75, spare=1,
                               scale_down_after_s=1800.0)
    env.process(controller.run())
    env.run(until=WEEK_S)
    runs["forecast on/off"] = farm

    base_energy = runs["static peak"].energy_j()
    print(f"{'policy':<18}{'energy kWh':>12}{'saving':>9}"
          f"{'avg servers':>13}{'switches':>10}{'shed %':>8}")
    for label, farm in runs.items():
        energy = farm.energy_j()
        shed = farm.shed_monitor.integral() / max(
            farm.balancer.offered_monitor.integral(), 1e-9)
        print(f"{label:<18}{energy / 3.6e6:>12.1f}"
              f"{1 - energy / base_energy:>9.1%}"
              f"{farm.active_monitor.time_weighted_mean():>13.1f}"
              f"{farm.active_count_switches():>10d}"
              f"{shed:>8.3%}")

    print("\nThe §4.3 takeaway: turning idle servers off eliminates the "
          "~60% idle floor\n(~25% of weekly energy here); forecasting "
          "keeps the saving without shedding\nload at the morning ramp, "
          "which the purely reactive policy cannot avoid.")


if __name__ == "__main__":
    main()
